// Cross-strategy differential harness: the proof that parallel frontier
// evaluation AND the lattice storage backend are execution details, not
// semantic changes. For every d in 4..12 and two thresholds per d, every
// strategy {dynamic, bottom-up, top-down, exhaustive} is run
// {sequentially, parallel across 2/4/8-thread pools, and (for the pruning
// strategies) with speculative next-level prefetch} × {dense, sparse}
// lattice backends, and held to:
//
//   * the exact outlying-subspace answer of the ExhaustiveSearch oracle,
//     for every one of the 2^d - 1 subspaces;
//   * bitwise-identical OD values: every subspace a run memoised must carry
//     exactly the double the oracle's sequential evaluation produced;
//   * the sequential run of the same strategy, field by field — including
//     the order-sensitive evaluated_outliers list (same masks, same order:
//     the parallel merge fed the lattice store the identical seed sequence)
//     the work counters (same evaluations, same pruning, same steps);
//   * wasted_evaluations == 0 without speculation, and with speculation the
//     order-independent counters still unchanged.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/filter/density_filter.h"
#include "src/filter/density_summary.h"
#include "src/knn/linear_scan.h"
#include "src/search/od_evaluator.h"
#include "src/search/subspace_search.h"
#include "src/service/thread_pool.h"
#include "tests/testutil/adversarial_gen.h"

namespace hos::search {
namespace {

/// All masks a run actually memoised, with their values.
std::vector<std::pair<uint64_t, double>> MemoisedValues(const OdEvaluator& od,
                                                        int d) {
  std::vector<std::pair<uint64_t, double>> out;
  const uint64_t lattice = (uint64_t{1} << d) - 1;
  for (uint64_t mask = 1; mask <= lattice; ++mask) {
    double value;
    if (od.LookupLocal(mask, &value)) out.emplace_back(mask, value);
  }
  return out;
}

class StrategyDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(StrategyDifferentialTest, AllExecutionModesMatchTheOracle) {
  const int d = GetParam();
  const uint64_t lattice = (uint64_t{1} << d) - 1;

  Rng rng(1000 + static_cast<uint64_t>(d));
  data::SubspaceOutlierSpec spec;
  spec.num_points = 110;
  spec.num_dims = d;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  if (d >= 5) spec.planted_subspaces.push_back(Subspace::FromOneBased({3, 4, 5}));
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  const data::Dataset& ds = generated->dataset;
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  const data::PointId query = generated->outliers[0].id;
  constexpr int kK = 4;

  service::ThreadPool pool2(2), pool4(4), pool8(8);
  std::vector<service::ThreadPool*> pools = {&pool2, &pool4, &pool8};

  std::vector<std::unique_ptr<SubspaceSearch>> strategies;
  strategies.push_back(std::make_unique<DynamicSubspaceSearch>(
      d, lattice::PruningPriors::Flat(d)));
  strategies.push_back(std::make_unique<BottomUpSearch>(d));
  strategies.push_back(std::make_unique<TopDownSearch>(d));
  strategies.push_back(std::make_unique<ExhaustiveSearch>(d));

  // One low threshold (rich outlier structure, both prunings active) and
  // one high (sparse outliers, mostly downward pruning).
  for (double threshold : {0.8, 1.3}) {
    SCOPED_TRACE("threshold=" + std::to_string(threshold));

    // Oracle: the exhaustive sequential sweep evaluates (and memoises)
    // every subspace, giving the ground-truth OD for each mask.
    OdEvaluator oracle_od(engine, ds.Row(query), kK, query);
    auto oracle = ExhaustiveSearch(d).Run(&oracle_od, threshold);
    ASSERT_TRUE(oracle.ok());
    std::vector<double> truth(lattice + 1, 0.0);
    for (uint64_t mask = 1; mask <= lattice; ++mask) {
      ASSERT_TRUE(oracle_od.LookupLocal(mask, &truth[mask]));
    }

    for (const auto& strategy : strategies) {
      SCOPED_TRACE(std::string("strategy=") + std::string(strategy->name()));
      const bool prunes = strategy->name() != "exhaustive";

      // Sequential reference run for this strategy.
      OdEvaluator seq_od(engine, ds.Row(query), kK, query);
      auto seq = strategy->Run(&seq_od, threshold);
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(seq->minimal_outlying_subspaces,
                oracle->minimal_outlying_subspaces);
      const auto seq_memo = MemoisedValues(seq_od, d);

      struct Mode {
        service::ThreadPool* pool;  // null = sequential
        bool speculate;
        lattice::LatticeBackend backend;
      };
      std::vector<Mode> modes;
      // The sequential sparse run checks the backend alone against the
      // sequential reference (which is dense: kAuto at d <= 12); the pool
      // modes then cross both backends with every thread count (and
      // speculation, where it applies). No sequential-dense mode — it
      // would just repeat the reference run.
      modes.push_back({nullptr, false, lattice::LatticeBackend::kSparse});
      for (lattice::LatticeBackend backend :
           {lattice::LatticeBackend::kDense,
            lattice::LatticeBackend::kSparse}) {
        for (service::ThreadPool* pool : pools) {
          modes.push_back({pool, false, backend});
          if (prunes) modes.push_back({pool, true, backend});
        }
      }

      for (const Mode& mode : modes) {
        SCOPED_TRACE(
            "threads=" +
            std::to_string(mode.pool ? mode.pool->num_threads() : 1) +
            " speculate=" + std::to_string(mode.speculate) + " backend=" +
            (mode.backend == lattice::LatticeBackend::kDense ? "dense"
                                                             : "sparse"));
        SearchExecution exec;
        exec.pool = mode.pool;
        exec.speculate = mode.speculate;
        exec.lattice_backend = mode.backend;

        OdEvaluator par_od(engine, ds.Row(query), kK, query);
        auto par = strategy->Run(&par_od, threshold, exec);
        ASSERT_TRUE(par.ok());

        // (1) Answer sets: identical to the oracle and to the sequential
        // run, over the whole lattice.
        EXPECT_EQ(par->minimal_outlying_subspaces,
                  oracle->minimal_outlying_subspaces);
        for (uint64_t mask = 1; mask <= lattice; ++mask) {
          ASSERT_EQ(par->IsOutlying(Subspace(mask)),
                    truth[mask] >= threshold)
              << "mask " << mask;
        }

        // (2) Bitwise OD values: everything this run memoised matches the
        // oracle's sequential computation exactly (no tolerance).
        for (const auto& [mask, value] : MemoisedValues(par_od, d)) {
          ASSERT_EQ(value, truth[mask]) << "mask " << mask;
        }

        // (3) Field-by-field equivalence with the sequential walk. The
        // evaluated_outliers list is order-sensitive: equality means the
        // parallel merge produced the exact seed sequence.
        EXPECT_EQ(par->evaluated_outliers, seq->evaluated_outliers);
        EXPECT_EQ(par->outlier_fraction, seq->outlier_fraction);
        EXPECT_EQ(par->counters.od_evaluations,
                  seq->counters.od_evaluations);
        EXPECT_EQ(par->counters.pruned_upward, seq->counters.pruned_upward);
        EXPECT_EQ(par->counters.pruned_downward,
                  seq->counters.pruned_downward);
        EXPECT_EQ(par->counters.steps, seq->counters.steps);

        // (4) The whole lattice is accounted for, speculation or not.
        EXPECT_EQ(par->counters.od_evaluations +
                      par->counters.pruned_upward +
                      par->counters.pruned_downward,
                  lattice);

        if (!mode.speculate) {
          // No speculation ⇒ no wasted work, and the memoised set is
          // exactly the sequential run's (same masks, same values).
          EXPECT_EQ(par->counters.wasted_evaluations, 0u);
          EXPECT_EQ(MemoisedValues(par_od, d), seq_memo);
        } else {
          // Speculation may compute ahead, but every extra evaluation is
          // declared: memo size = consumed evaluations + waste (shared
          // hits impossible here: no SharedOdStore attached).
          EXPECT_EQ(par_od.num_evaluations(),
                    par->counters.od_evaluations +
                        par->counters.wasted_evaluations);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DimensionSweep, StrategyDifferentialTest,
                         ::testing::Range(4, 13),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

// The same cross-strategy contract on adversarially generated data:
// near-threshold OD bands (verdicts a hair on either side of T), correlated
// dimensions, exact duplicates, and tombstoned rows. Every pruning strategy,
// sequential and parallel, must still match the exhaustive oracle exactly —
// there is no "close enough" when ODs are engineered to sit at T ± 3%.
TEST(StrategyDifferentialAdversarialTest, AllStrategiesMatchTheOracle) {
  testutil::AdversarialSpec spec;
  spec.num_dims = 6;
  spec.seed = 2024;
  testutil::AdversarialDataset scenario = testutil::MakeAdversarial(spec);
  data::Dataset ds = testutil::ToDataset(scenario);
  ASSERT_TRUE(ds.DeleteRows(scenario.tombstones).ok());
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);

  const int d = spec.num_dims;
  const uint64_t lattice = (uint64_t{1} << d) - 1;
  service::ThreadPool pool(4);

  std::vector<std::unique_ptr<SubspaceSearch>> strategies;
  strategies.push_back(std::make_unique<DynamicSubspaceSearch>(
      d, lattice::PruningPriors::Flat(d)));
  strategies.push_back(std::make_unique<BottomUpSearch>(d));
  strategies.push_back(std::make_unique<TopDownSearch>(d));

  std::vector<data::PointId> queries = scenario.probes;
  queries.push_back(5);  // a background row amid the correlated cloud

  for (data::PointId query : queries) {
    SCOPED_TRACE("query id=" + std::to_string(query));
    OdEvaluator oracle_od(engine, ds.Row(query), scenario.k, query);
    auto oracle = ExhaustiveSearch(d).Run(&oracle_od, scenario.threshold);
    ASSERT_TRUE(oracle.ok());
    std::vector<double> truth(lattice + 1, 0.0);
    for (uint64_t mask = 1; mask <= lattice; ++mask) {
      ASSERT_TRUE(oracle_od.LookupLocal(mask, &truth[mask]));
    }

    for (const auto& strategy : strategies) {
      SCOPED_TRACE(std::string("strategy=") + std::string(strategy->name()));
      for (bool parallel : {false, true}) {
        SearchExecution exec;
        exec.pool = parallel ? &pool : nullptr;
        exec.speculate = parallel;

        OdEvaluator od(engine, ds.Row(query), scenario.k, query);
        auto run = strategy->Run(&od, scenario.threshold, exec);
        ASSERT_TRUE(run.ok());
        EXPECT_EQ(run->minimal_outlying_subspaces,
                  oracle->minimal_outlying_subspaces);
        for (uint64_t mask = 1; mask <= lattice; ++mask) {
          ASSERT_EQ(run->IsOutlying(Subspace(mask)),
                    truth[mask] >= scenario.threshold)
              << "mask " << mask;
        }
        for (const auto& [mask, value] : MemoisedValues(od, d)) {
          ASSERT_EQ(value, truth[mask]) << "mask " << mask;
        }
        EXPECT_EQ(run->counters.od_evaluations + run->counters.pruned_upward +
                      run->counters.pruned_downward,
                  lattice);
      }
    }
  }
}

// Bound-margin frontier ordering is a scheduling decision, not a semantic
// one: with the density filter active, every pruning strategy run with
// kBoundMargin must match its canonical-order run field by field — the
// order-sensitive evaluated_outliers list, every work counter including
// the filter trio, and the closure identity — in both conservative and
// speculative modes, on the adversarial near-threshold data where a
// reordered merge would first diverge.
TEST(FrontierOrderingDifferentialTest, OrderingIsExecutionOnly) {
  testutil::AdversarialSpec spec;
  spec.num_dims = 6;
  spec.seed = 3033;
  testutil::AdversarialDataset scenario = testutil::MakeAdversarial(spec);
  data::Dataset ds = testutil::ToDataset(scenario);
  ASSERT_TRUE(ds.DeleteRows(scenario.tombstones).ok());
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  const filter::DensityBoundFilter filter(
      ds, knn::MetricKind::kL2,
      filter::DensitySummary::Build(ds, /*bits_per_dim=*/8));

  const int d = spec.num_dims;
  const uint64_t lattice = (uint64_t{1} << d) - 1;

  std::vector<std::unique_ptr<SubspaceSearch>> strategies;
  strategies.push_back(std::make_unique<DynamicSubspaceSearch>(
      d, lattice::PruningPriors::Flat(d)));
  strategies.push_back(std::make_unique<BottomUpSearch>(d));
  strategies.push_back(std::make_unique<TopDownSearch>(d));

  std::vector<data::PointId> queries = scenario.probes;
  queries.push_back(5);

  for (data::PointId query : queries) {
    SCOPED_TRACE("query id=" + std::to_string(query));
    for (const auto& strategy : strategies) {
      SCOPED_TRACE(std::string("strategy=") + std::string(strategy->name()));
      for (filter::FilterMode mode : {filter::FilterMode::kConservative,
                                      filter::FilterMode::kSpeculative}) {
        SCOPED_TRACE(mode == filter::FilterMode::kConservative
                         ? "conservative"
                         : "speculative");
        SearchExecution canonical;
        canonical.filter = &filter;
        canonical.filter_mode = mode;
        SearchExecution ordered = canonical;
        ordered.frontier_ordering = FrontierOrdering::kBoundMargin;

        OdEvaluator canon_od(engine, ds.Row(query), scenario.k, query);
        auto canon = strategy->Run(&canon_od, scenario.threshold, canonical);
        ASSERT_TRUE(canon.ok()) << canon.status().ToString();
        OdEvaluator ord_od(engine, ds.Row(query), scenario.k, query);
        auto ord = strategy->Run(&ord_od, scenario.threshold, ordered);
        ASSERT_TRUE(ord.ok()) << ord.status().ToString();

        EXPECT_EQ(ord->minimal_outlying_subspaces,
                  canon->minimal_outlying_subspaces);
        EXPECT_EQ(ord->evaluated_outliers, canon->evaluated_outliers);
        EXPECT_EQ(ord->outlier_fraction, canon->outlier_fraction);
        EXPECT_EQ(ord->counters.od_evaluations,
                  canon->counters.od_evaluations);
        EXPECT_EQ(ord->counters.pruned_upward,
                  canon->counters.pruned_upward);
        EXPECT_EQ(ord->counters.pruned_downward,
                  canon->counters.pruned_downward);
        EXPECT_EQ(ord->counters.steps, canon->counters.steps);
        EXPECT_EQ(ord->counters.bound_decisions,
                  canon->counters.bound_decisions);
        EXPECT_EQ(ord->counters.risky_decisions,
                  canon->counters.risky_decisions);
        EXPECT_EQ(ord->counters.bound_gap, canon->counters.bound_gap);
        EXPECT_EQ(ord->counters.gate_skips, 0u);
        EXPECT_EQ(MemoisedValues(ord_od, d), MemoisedValues(canon_od, d));
        EXPECT_EQ(ord->counters.od_evaluations +
                      ord->counters.pruned_upward +
                      ord->counters.pruned_downward +
                      ord->counters.bound_decisions,
                  lattice);
      }
    }
  }
}

}  // namespace
}  // namespace hos::search
