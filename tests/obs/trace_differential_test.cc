// The tracing differential: collecting a trace must never change what a
// query answers — bitwise-identical outcomes and order-independent work
// counters, across every kNN backend and both lattice stores — and the
// trace that comes back must name every span level (service → search →
// strategy → level → knn / od_store_hit).
//
// Also covers the service-level integration: traced batches through
// QueryService (worker pool × shared search pool, the TSan shape), the
// slow-query counter, and the unified metrics snapshot carrying service,
// cache, ingest and per-backend kNN series at once.

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "src/core/hos_miner.h"
#include "src/data/generator.h"
#include "src/service/query_service.h"

namespace hos {
namespace {

data::GeneratedData MakePlanted(uint64_t seed, size_t n = 220, int d = 6) {
  Rng rng(seed);
  data::SubspaceOutlierSpec spec;
  spec.num_points = n;
  spec.num_dims = d;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  EXPECT_TRUE(generated.ok());
  return std::move(generated).value();
}

core::HosMiner BuildMiner(uint64_t seed, core::IndexKind index) {
  auto generated = MakePlanted(seed);
  core::HosMinerConfig config;
  config.index = index;
  auto miner = core::HosMiner::Build(std::move(generated.dataset), config);
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

/// Answers AND deterministic work counters must match exactly. (Sequential
/// single-threaded runs make even the engine-delta counters reproducible.)
void ExpectIdentical(const core::QueryResult& off, const core::QueryResult& on,
                     const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(off.outcome.num_dims, on.outcome.num_dims);
  EXPECT_EQ(off.outcome.threshold, on.outcome.threshold);
  EXPECT_EQ(off.outcome.minimal_outlying_subspaces,
            on.outcome.minimal_outlying_subspaces);
  EXPECT_EQ(off.outcome.evaluated_outliers, on.outcome.evaluated_outliers);
  EXPECT_EQ(off.outcome.outlier_fraction, on.outcome.outlier_fraction);
  EXPECT_EQ(off.outcome.counters.od_evaluations,
            on.outcome.counters.od_evaluations);
  EXPECT_EQ(off.outcome.counters.pruned_upward,
            on.outcome.counters.pruned_upward);
  EXPECT_EQ(off.outcome.counters.pruned_downward,
            on.outcome.counters.pruned_downward);
  EXPECT_EQ(off.outcome.counters.wasted_evaluations,
            on.outcome.counters.wasted_evaluations);
  EXPECT_EQ(off.outcome.counters.steps, on.outcome.counters.steps);
}

TEST(TraceDifferentialTest, TracingChangesNoAnswerOnAnyBackendOrLattice) {
  const std::pair<core::IndexKind, const char*> kBackends[] = {
      {core::IndexKind::kLinearScan, "linear_scan"},
      {core::IndexKind::kXTree, "xtree"},
      {core::IndexKind::kVaFile, "va_file"},
  };
  const std::pair<lattice::LatticeBackend, const char*> kLattices[] = {
      {lattice::LatticeBackend::kDense, "dense"},
      {lattice::LatticeBackend::kSparse, "sparse"},
  };
  for (const auto& [index, index_name] : kBackends) {
    core::HosMiner miner = BuildMiner(31, index);
    for (const auto& [lattice_backend, lattice_name] : kLattices) {
      for (data::PointId id = 0; id < 12; ++id) {
        const std::string context = std::string(index_name) + "/" +
                                    lattice_name + "/point " +
                                    std::to_string(id);
        core::QueryOptions off_options;
        off_options.lattice_backend = lattice_backend;
        auto off = miner.Query(id, off_options);
        ASSERT_TRUE(off.ok()) << context;
        EXPECT_EQ(off->trace, nullptr) << context;

        core::QueryOptions on_options;
        on_options.lattice_backend = lattice_backend;
        on_options.collect_trace = true;
        auto on = miner.Query(id, on_options);
        ASSERT_TRUE(on.ok()) << context;
        ExpectIdentical(*off, *on, context);

        // The trace names every level of the span hierarchy.
        ASSERT_NE(on->trace, nullptr) << context;
        const obs::QueryTrace& trace = *on->trace;
        EXPECT_EQ(trace.dropped_spans, 0u) << context;
        const obs::TraceSpan* search = trace.Find("search");
        ASSERT_NE(search, nullptr) << context;
        EXPECT_EQ(search->parent, -1) << context;
        const obs::TraceSpan* strategy = trace.Find("dynamic");
        ASSERT_NE(strategy, nullptr) << context;
        EXPECT_EQ(strategy->parent, search->id) << context;
        EXPECT_GT(trace.CountByName("level"), 0u) << context;
        EXPECT_GT(trace.CountByName("knn"), 0u) << context;
        const obs::TraceSpan* knn = trace.Find("knn");
        ASSERT_NE(knn, nullptr) << context;
        EXPECT_EQ(trace.spans[static_cast<size_t>(knn->parent)].name, "level")
            << context;
        EXPECT_EQ(knn->detail.rfind("mask=0x", 0), 0u) << context;
      }
    }
  }
}

TEST(TraceDifferentialTest, ServiceTracingMatchesUntracedService) {
  std::vector<data::PointId> ids(80);
  std::iota(ids.begin(), ids.end(), 0);

  service::QueryServiceConfig untraced_config;
  untraced_config.num_threads = 4;
  untraced_config.search_threads = 4;
  service::QueryService untraced(
      BuildMiner(32, core::IndexKind::kXTree), untraced_config);
  auto expected = untraced.QueryBatch(ids);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Tracing on, same pools, same cache: answers must be identical and every
  // result must carry a full span tree. Worker threads record into their
  // own tracer while sharing the search pool — the TSan shape.
  service::QueryServiceConfig traced_config = untraced_config;
  traced_config.observability.trace_queries = true;
  service::QueryService traced(BuildMiner(32, core::IndexKind::kXTree),
                               traced_config);
  auto actual = traced.QueryBatch(ids);
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();

  ASSERT_EQ(actual->size(), expected->size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const std::string context = "point " + std::to_string(i);
    SCOPED_TRACE(context);
    const core::QueryResult& a = (*actual)[i];
    const core::QueryResult& e = (*expected)[i];
    // Only the answer is compared: through the service, work counters are
    // engine-wide deltas that concurrent queries bleed into.
    EXPECT_EQ(a.outcome.num_dims, e.outcome.num_dims);
    EXPECT_EQ(a.outcome.threshold, e.outcome.threshold);
    EXPECT_EQ(a.outcome.minimal_outlying_subspaces,
              e.outcome.minimal_outlying_subspaces);
    EXPECT_EQ(a.outcome.evaluated_outliers, e.outcome.evaluated_outliers);
    EXPECT_EQ(a.outcome.outlier_fraction, e.outcome.outlier_fraction);

    // QueryBatch runs fused blocks by default, so each result carries the
    // block's shared span tree: batch -> search -> batch-dynamic -> wave
    // -> knn-batch (store hits resolve silently inside the wave).
    ASSERT_NE(a.trace, nullptr);
    EXPECT_EQ(e.trace, nullptr);
    const obs::TraceSpan* root = a.trace->Find("batch");
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->parent, -1);
    const obs::TraceSpan* search = a.trace->Find("search");
    ASSERT_NE(search, nullptr);
    EXPECT_EQ(search->parent, root->id);
    const obs::TraceSpan* strategy = a.trace->Find("batch-dynamic");
    ASSERT_NE(strategy, nullptr);
    EXPECT_EQ(strategy->parent, search->id);
    EXPECT_GT(a.trace->CountByName("knn-batch"), 0u);
  }

  // Aggregates reached the stats surface.
  const service::ServiceStatsSnapshot stats = traced.Stats();
  EXPECT_EQ(stats.queries_served, ids.size());
  EXPECT_GT(stats.od_evaluations, 0u);
  EXPECT_EQ(stats.slow_queries, 0u);  // no threshold configured
}

TEST(TraceDifferentialTest, SlowQueryThresholdCountsAndTraces) {
  service::QueryServiceConfig config;
  config.num_threads = 1;
  // Every query is "slow" against a picosecond threshold, so the counter
  // must move and the result still carries its trace.
  config.observability.slow_query_threshold_seconds = 1e-12;
  service::QueryService service(BuildMiner(33, core::IndexKind::kLinearScan),
                                config);
  auto result = service.Query(0);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->trace, nullptr);
  EXPECT_NE(result->trace->Find("service"), nullptr);

  const service::ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.slow_queries, 1u);
  EXPECT_NE(stats.ToJson().find("\"slow_queries\": 1"), std::string::npos);
}

// The tentpole acceptance check: one MetricsRegistry snapshot describes the
// whole engine — service counters, OD-cache counters, ingest gauges, search
// aggregates and the per-backend kNN internals.
TEST(TraceDifferentialTest, OneMetricsSnapshotCoversEverySubsystem) {
  service::QueryServiceConfig config;
  config.num_threads = 2;
  service::QueryService service(BuildMiner(34, core::IndexKind::kXTree),
                                config);
  std::vector<data::PointId> ids(20);
  std::iota(ids.begin(), ids.end(), 0);
  ASSERT_TRUE(service.QueryBatch(ids).ok());
  ASSERT_TRUE(
      service.AppendBatch({{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}}).ok());
  service.WaitForRebuilds();

  const std::string json = service.MetricsJson();
  for (const char* series : {
           // service
           "\"service_queries_served\"", "\"service_batches_served\"",
           "\"service_query_latency_seconds\"", "\"service_slow_queries\"",
           // search aggregates
           "\"service_od_evaluations\"", "\"service_wasted_evaluations\"",
           // cache
           "\"od_cache_hits\"", "\"od_cache_misses\"", "\"od_cache_size\"",
           // ingest
           "\"service_rows_ingested\"", "\"service_append_batches\"",
           "\"service_rebuilds_completed\"", "\"dataset_version\"",
           "\"dataset_delta_rows\"",
           // per-backend kNN internals
           "\"knn_distance_computations\"", "\"knn_node_accesses\"",
           "\"knn_kernel_scans\"", "\"knn_scalar_scans\"",
           "\"knn_delta_merges\"", "\"knn_stale_fallbacks\"",
       }) {
    EXPECT_NE(json.find(series), std::string::npos) << series;
  }
  EXPECT_NE(json.find("\"backend\": \"xtree\""), std::string::npos);

  // And the Prometheus surface renders the same registry.
  const std::string prom = service.MetricsPrometheus();
  EXPECT_NE(prom.find("# TYPE service_queries_served counter"),
            std::string::npos);
  EXPECT_NE(prom.find("knn_distance_computations{backend=\"xtree\"}"),
            std::string::npos);
}

}  // namespace
}  // namespace hos
