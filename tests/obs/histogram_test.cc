// Unit tests for obs::Histogram, including the two edge cases the old
// service-layer LatencyHistogram got wrong: values above the top bucket
// were silently clamped into it (now: dedicated overflow bucket plus exact
// max), and Percentile(0) always answered bucket 0's upper bound (now: the
// bucket of the smallest recorded value).

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hos::obs {
namespace {

TEST(HistogramTest, EmptyHistogramAnswersZeroEverywhere) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.overflow_count(), 0u);
  EXPECT_EQ(hist.max_recorded(), 0.0);
  EXPECT_EQ(hist.sum(), 0.0);
  EXPECT_EQ(hist.Percentile(0.0), 0.0);
  EXPECT_EQ(hist.Percentile(0.5), 0.0);
  EXPECT_EQ(hist.Percentile(1.0), 0.0);
}

TEST(HistogramTest, PercentileBoundsTheRecordedValue) {
  Histogram hist;
  hist.Record(0.010);  // 10 ms
  EXPECT_EQ(hist.count(), 1u);
  // Every quantile of a single-value histogram reports that value's
  // bucket: within the 2^(1/4) geometric error of the true value.
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    const double p = hist.Percentile(q);
    EXPECT_GE(p, 0.010) << "q=" << q;
    EXPECT_LE(p, 0.010 * 1.19) << "q=" << q;
  }
}

TEST(HistogramTest, PercentileZeroReportsSmallestValueNotBucketZero) {
  Histogram hist;
  hist.Record(1.0);  // far above bucket 0 (1 microsecond)
  // The old implementation returned UpperBound(0) == 1e-6 here.
  EXPECT_GE(hist.Percentile(0.0), 1.0);
}

TEST(HistogramTest, PercentilesAreMonotoneInQ) {
  Histogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(1e-4 * i);  // 0.1ms .. 100ms
  double previous = 0.0;
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const double p = hist.Percentile(q);
    EXPECT_GE(p, previous) << "q=" << q;
    previous = p;
  }
  // p50 of a uniform 0.1ms..100ms spread lands near 50ms (bucket error
  // bounded by the 2^(1/4) ratio).
  EXPECT_GT(hist.Percentile(0.5), 0.040);
  EXPECT_LT(hist.Percentile(0.5), 0.065);
}

TEST(HistogramTest, OverflowValuesAreCountedNotClamped) {
  Histogram hist;
  // Default range tops out near 1e-6 * 2^32 s; 1e9 is far beyond it.
  hist.Record(0.001);
  hist.Record(1e9);
  hist.Record(2e9);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.overflow_count(), 2u);
  EXPECT_EQ(hist.max_recorded(), 2e9);
  // A rank landing in the overflow bucket answers the exact max rather
  // than the top bucket's upper bound.
  EXPECT_EQ(hist.Percentile(1.0), 2e9);
  // Ranks below the overflow still answer from the finite buckets.
  EXPECT_LT(hist.Percentile(0.0), 0.0012);
}

TEST(HistogramTest, SumAndMaxTrackExactValues) {
  Histogram hist;
  hist.Record(1.5);
  hist.Record(2.5);
  hist.Record(0.25);
  EXPECT_DOUBLE_EQ(hist.sum(), 4.25);
  EXPECT_DOUBLE_EQ(hist.max_recorded(), 2.5);
}

TEST(HistogramTest, NonPositiveValuesLandInBucketZero) {
  Histogram hist;
  hist.Record(0.0);
  hist.Record(-1.0);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_EQ(hist.overflow_count(), 0u);
  // Both sit in bucket 0, whose upper bound is the configured minimum.
  EXPECT_LE(hist.Percentile(1.0), 1e-6 + 1e-12);
}

TEST(HistogramTest, CustomBucketLayoutIsRespected) {
  HistogramOptions options;
  options.min_value = 1.0;
  options.num_buckets = 8;
  Histogram hist(options);
  hist.Record(0.5);   // bucket 0
  hist.Record(100.0);  // far above the 8-bucket range (top ≈ 3.4) → overflow
  EXPECT_EQ(hist.overflow_count(), 1u);
  EXPECT_EQ(hist.Percentile(1.0), 100.0);
}

// Concurrent recording (the TSan case): many threads hammer one histogram;
// totals must match and no data race may be reported.
TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(1e-4 * ((t * kPerThread + i) % 100 + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist.overflow_count(), 0u);
  EXPECT_DOUBLE_EQ(hist.max_recorded(), 1e-4 * 100);
}

}  // namespace
}  // namespace hos::obs
