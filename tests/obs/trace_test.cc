// QueryTracer / QueryTrace unit tests: span tree shape, the span cap,
// RAII behaviour with a null tracer, JSON shape, and concurrent span
// recording (the situation ParallelEvaluator workers put the tracer in).

#include "src/obs/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hos::obs {
namespace {

TEST(QueryTracerTest, BuildsAWellFormedTree) {
  QueryTracer tracer;
  const int root = tracer.BeginSpan("service");
  const int search = tracer.BeginSpan("search", root);
  const int level = tracer.BeginSpan("level", search, "m=2");
  const int knn = tracer.BeginSpan("knn", level, "mask=0x6");
  tracer.EndSpan(knn);
  tracer.EndSpan(level);
  tracer.EndSpan(search);
  tracer.EndSpan(root);

  const QueryTrace trace = tracer.Finish();
  ASSERT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.dropped_spans, 0u);

  // Ids are vector positions; parents precede children.
  for (const TraceSpan& span : trace.spans) {
    EXPECT_EQ(span.id, &span - trace.spans.data());
    EXPECT_LT(span.parent, span.id);
  }
  const TraceSpan* root_span = trace.Find("service");
  ASSERT_NE(root_span, nullptr);
  EXPECT_EQ(root_span->parent, -1);
  const TraceSpan* knn_span = trace.Find("knn");
  ASSERT_NE(knn_span, nullptr);
  EXPECT_EQ(knn_span->detail, "mask=0x6");
  EXPECT_EQ(trace.spans[static_cast<size_t>(knn_span->parent)].name, "level");
  EXPECT_EQ(trace.CountByName("level"), 1u);
  EXPECT_EQ(trace.CountByName("absent"), 0u);
}

TEST(QueryTracerTest, DurationsAreStampedAndOrdered) {
  QueryTracer tracer;
  const int outer = tracer.BeginSpan("outer");
  const int inner = tracer.BeginSpan("inner", outer);
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);
  const QueryTrace trace = tracer.Finish();
  const TraceSpan* outer_span = trace.Find("outer");
  const TraceSpan* inner_span = trace.Find("inner");
  ASSERT_NE(outer_span, nullptr);
  ASSERT_NE(inner_span, nullptr);
  EXPECT_GE(outer_span->duration_seconds, 0.0);
  EXPECT_GE(inner_span->start_seconds, outer_span->start_seconds);
  EXPECT_GE(outer_span->duration_seconds, inner_span->duration_seconds);
}

TEST(QueryTracerTest, CapDropsSpansButNeverMalformsTheTree) {
  QueryTracer tracer(/*max_spans=*/3);
  const int a = tracer.BeginSpan("a");
  const int b = tracer.BeginSpan("b", a);
  const int c = tracer.BeginSpan("c", b);
  const int d = tracer.BeginSpan("d", c);  // over the cap
  const int e = tracer.BeginSpan("e", c);  // over the cap
  EXPECT_GE(a, 0);
  EXPECT_GE(c, 0);
  EXPECT_EQ(d, -1);
  EXPECT_EQ(e, -1);
  tracer.EndSpan(d);  // no-ops, must not crash
  tracer.EndSpan(c);
  tracer.EndSpan(b);
  tracer.EndSpan(a);
  const QueryTrace trace = tracer.Finish();
  EXPECT_EQ(trace.spans.size(), 3u);
  EXPECT_EQ(trace.dropped_spans, 2u);
}

TEST(QueryTracerTest, FinishResetsTheTracer) {
  QueryTracer tracer;
  tracer.EndSpan(tracer.BeginSpan("first"));
  EXPECT_EQ(tracer.Finish().spans.size(), 1u);
  EXPECT_EQ(tracer.Finish().spans.size(), 0u);
}

TEST(ScopedSpanTest, NullTracerIsFullyDisabled) {
  ScopedSpan span(nullptr, "anything");
  EXPECT_EQ(span.id(), -1);
}

TEST(ScopedSpanTest, NestsViaExplicitParentIds) {
  QueryTracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    ScopedSpan inner(&tracer, "inner", outer.id(), "detail");
    EXPECT_NE(inner.id(), outer.id());
  }
  const QueryTrace trace = tracer.Finish();
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.Find("inner")->parent, trace.Find("outer")->id);
}

TEST(QueryTraceTest, ToJsonNamesEveryField) {
  QueryTracer tracer;
  const int root = tracer.BeginSpan("service", -1, "point=4");
  tracer.EndSpan(tracer.BeginSpan("knn", root));
  tracer.EndSpan(root);
  const std::string json = tracer.Finish().ToJson();
  for (const char* needle :
       {"\"dropped_spans\": 0", "\"spans\": [", "\"id\": 0", "\"parent\": -1",
        "\"name\": \"service\"", "\"detail\": \"point=4\"",
        "\"start_seconds\": ", "\"duration_seconds\": "}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
}

// Frontier workers record spans concurrently into one tracer; every span
// must land (or be counted dropped) without corruption. Run under TSan via
// the obs ctest label.
TEST(QueryTracerTest, ConcurrentSpanRecordingIsSafe) {
  QueryTracer tracer;
  const int root = tracer.BeginSpan("root");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, root] {
      for (int i = 0; i < kPerThread; ++i) {
        ScopedSpan span(&tracer, "knn", root);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  tracer.EndSpan(root);
  const QueryTrace trace = tracer.Finish();
  EXPECT_EQ(trace.spans.size(), 1u + kThreads * kPerThread);
  EXPECT_EQ(trace.dropped_spans, 0u);
  EXPECT_EQ(trace.CountByName("knn"),
            static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace hos::obs
