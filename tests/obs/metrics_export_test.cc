// MetricsRegistry: handle identity, label-keyed series, pull-model
// callbacks, type-collision handling, and the export surfaces. The JSON
// exporter's output is run through a small structural validator (objects /
// arrays / strings / numbers only — exactly the grammar the exporter may
// emit), so a malformed snapshot fails here rather than in whatever scrapes
// BENCH_*.json downstream.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

namespace hos::obs {
namespace {

// --- a deliberately tiny JSON structural checker -------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-' || Peek() == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    const std::string w(word);
    if (text_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- registry behaviour ---------------------------------------------------

TEST(MetricsRegistryTest, SameNameSameLabelsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests");
  Counter* b = registry.GetCounter("requests");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, LabelsCreateDistinctSeries) {
  MetricsRegistry registry;
  Counter* xtree = registry.GetCounter("knn_scans", {{"backend", "xtree"}});
  Counter* vafile =
      registry.GetCounter("knn_scans", {{"backend", "va_file"}});
  EXPECT_NE(xtree, vafile);
  xtree->Increment(5);
  vafile->Increment(7);
  EXPECT_EQ(registry.size(), 2u);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"backend\": \"xtree\""), std::string::npos);
  EXPECT_NE(json.find("\"backend\": \"va_file\""), std::string::npos);
}

TEST(MetricsRegistryTest, CallbacksEvaluateAtSnapshotTime) {
  MetricsRegistry registry;
  double level = 1.0;
  registry.RegisterCallback("water_level", {}, MetricType::kGauge,
                            [&level] { return level; });
  auto value_of = [&](const std::string& name) {
    for (const MetricValue& m : registry.Snapshot()) {
      if (m.name == name) return m.value;
    }
    return -1.0;
  };
  EXPECT_EQ(value_of("water_level"), 1.0);
  level = 42.0;
  EXPECT_EQ(value_of("water_level"), 42.0);
}

TEST(MetricsRegistryTest, ReRegisteringCallbackReplacesIt) {
  MetricsRegistry registry;
  registry.RegisterCallback("v", {}, MetricType::kCounter,
                            [] { return 1.0; });
  registry.RegisterCallback("v", {}, MetricType::kCounter,
                            [] { return 2.0; });
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Snapshot()[0].value, 2.0);
}

TEST(MetricsRegistryTest, TypeCollisionHandsBackDummyNotCrash) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mixed");
  counter->Increment();
  Gauge* gauge = registry.GetGauge("mixed");  // collision
  ASSERT_NE(gauge, nullptr);
  gauge->Set(99.0);  // safe to record into
  // The registry still holds exactly one "mixed" series, the counter.
  EXPECT_EQ(registry.size(), 1u);
  const std::vector<MetricValue> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].type, MetricType::kCounter);
  EXPECT_EQ(snapshot[0].value, 1.0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndDeterministic) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetCounter("alpha");
  registry.GetGauge("mid");
  const std::vector<MetricValue> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "alpha");
  EXPECT_EQ(snapshot[1].name, "mid");
  EXPECT_EQ(snapshot[2].name, "zebra");
  EXPECT_EQ(registry.ToJson(), registry.ToJson());
}

// --- export schema --------------------------------------------------------

TEST(MetricsExportTest, JsonIsStructurallyValidAndCarriesEveryField) {
  MetricsRegistry registry;
  registry.GetCounter("served", {{"shard", "0"}})->Increment(12);
  registry.GetGauge("depth")->Set(3.5);
  Histogram* hist = registry.GetHistogram("latency_seconds");
  hist->Record(0.001);
  hist->Record(0.020);
  registry.RegisterCallback("cache_hits", {}, MetricType::kCounter,
                            [] { return 77.0; });

  const std::string json = registry.ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;

  EXPECT_NE(json.find("\"metrics\": ["), std::string::npos);
  // Scalar metrics carry "value"; histograms carry the summary fields.
  EXPECT_NE(json.find("\"name\": \"served\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  for (const char* field :
       {"\"count\": 2", "\"sum\": ", "\"p50\": ", "\"p90\": ", "\"p99\": ",
        "\"p999\": ", "\"max\": ", "\"overflow\": 0"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"cache_hits\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 77"), std::string::npos);
}

TEST(MetricsExportTest, JsonEscapesAwkwardLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("odd", {{"path", "a\"b\\c\nd"}})->Increment();
  const std::string json = registry.ToJson();
  JsonChecker checker(json);
  EXPECT_TRUE(checker.Valid()) << json;
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(MetricsExportTest, PrometheusTextHasTypesQuantilesAndCounts) {
  MetricsRegistry registry;
  registry.GetCounter("served")->Increment(3);
  Histogram* hist = registry.GetHistogram("latency_seconds",
                                          {{"pool", "query"}});
  hist->Record(0.004);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE served counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds summary"), std::string::npos);
  EXPECT_NE(text.find("served 3"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.999\""), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count{pool=\"query\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum{pool=\"query\"}"),
            std::string::npos);
  EXPECT_NE(text.find("pool=\"query\",quantile=\"0.5\""), std::string::npos);
}

// Regression: the Prometheus exporter used to splice label values into the
// exposition text verbatim, so a value containing a backslash, a double
// quote, or a newline produced an unparseable (or worse, silently
// truncated/injected) scrape. The format requires exactly `\\`, `\"` and
// `\n` inside quoted label values.
TEST(MetricsExportTest, PrometheusEscapesHostileLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("odd", {{"path", "C:\\tmp\"evil\nseries 9"}})
      ->Increment(4);

  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(
      text.find("odd{path=\"C:\\\\tmp\\\"evil\\nseries 9\"} 4"),
      std::string::npos)
      << text;
  // No raw newline may survive inside a label value: every line of the
  // exposition is either a comment or starts with the metric name.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_EQ(line.rfind("odd{", 0), 0u) << "injected line: " << line;
    }
    start = end + 1;
  }
}

// Concurrent handle acquisition and recording (the TSan case): threads race
// Get* for overlapping names while others record through already-held
// handles; totals must come out exact.
TEST(MetricsRegistryTest, ConcurrentGetAndRecordIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* mine = registry.GetCounter("shared_total");
      Histogram* hist = registry.GetHistogram("shared_latency");
      for (int i = 0; i < kIterations; ++i) {
        mine->Increment();
        hist->Record(1e-3);
        if (i % 256 == 0) (void)registry.Snapshot();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared_total")->value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetHistogram("shared_latency")->count(),
            static_cast<uint64_t>(kThreads) * kIterations);
}

}  // namespace
}  // namespace hos::obs
