#include "src/data/normalizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hos::data {
namespace {

Dataset MakeData() {
  Dataset ds(2);
  ds.Append(std::vector<double>{0.0, 100.0});
  ds.Append(std::vector<double>{5.0, 200.0});
  ds.Append(std::vector<double>{10.0, 300.0});
  return ds;
}

TEST(NormalizerTest, MinMaxMapsToUnitInterval) {
  Dataset ds = MakeData();
  auto norm = Normalizer::Fit(ds, NormalizationKind::kMinMax);
  norm.Apply(&ds);
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(ds.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(ds.At(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ds.At(2, 1), 1.0);
}

TEST(NormalizerTest, ZScoreZeroMeanUnitVariance) {
  Dataset ds = MakeData();
  auto norm = Normalizer::Fit(ds, NormalizationKind::kZScore);
  norm.Apply(&ds);
  for (int j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (PointId i = 0; i < ds.size(); ++i) mean += ds.At(i, j);
    mean /= static_cast<double>(ds.size());
    EXPECT_NEAR(mean, 0.0, 1e-12);
  }
  auto stats = ComputeColumnStats(ds);
  EXPECT_NEAR(stats[0].stddev, 1.0, 1e-12);
}

TEST(NormalizerTest, NoneIsIdentity) {
  Dataset ds = MakeData();
  auto norm = Normalizer::Fit(ds, NormalizationKind::kNone);
  norm.Apply(&ds);
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 5.0);
}

TEST(NormalizerTest, PointTransformMatchesDatasetTransform) {
  Dataset ds = MakeData();
  auto norm = Normalizer::Fit(ds, NormalizationKind::kMinMax);
  std::vector<double> point = ds.RowCopy(1);
  norm.Apply(&ds);
  norm.ApplyToPoint(&point);
  EXPECT_DOUBLE_EQ(point[0], ds.At(1, 0));
  EXPECT_DOUBLE_EQ(point[1], ds.At(1, 1));
}

TEST(NormalizerTest, InvertRoundTrips) {
  Dataset ds = MakeData();
  auto norm = Normalizer::Fit(ds, NormalizationKind::kMinMax);
  std::vector<double> point{7.0, 250.0};
  auto original = point;
  norm.ApplyToPoint(&point);
  norm.Invert(&point);
  EXPECT_NEAR(point[0], original[0], 1e-12);
  EXPECT_NEAR(point[1], original[1], 1e-12);
}

TEST(NormalizerTest, ConstantColumnDoesNotDivideByZero) {
  Dataset ds(1);
  ds.Append(std::vector<double>{5.0});
  ds.Append(std::vector<double>{5.0});
  auto norm = Normalizer::Fit(ds, NormalizationKind::kMinMax);
  norm.Apply(&ds);
  EXPECT_TRUE(std::isfinite(ds.At(0, 0)));
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 0.0);
}

}  // namespace
}  // namespace hos::data
