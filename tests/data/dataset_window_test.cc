// Sliding-window dataset tests: chunked (never-reallocating) storage,
// tombstone deletes, TTL / row-count eviction, live-aware statistics and
// dead-chunk reclamation. The pointer-stability cases pin the append
// contract the concurrent serving path relies on — a rebuild's prepare
// phase may hold Row() spans while the ingest path appends.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"

namespace hos::data {
namespace {

std::vector<double> MakeRow(int dims, double value) {
  return std::vector<double>(dims, value);
}

TEST(DatasetWindowTest, AppendNeverInvalidatesRowPointers) {
  constexpr int kDims = 3;
  Dataset dataset(kDims);
  // Fill a few chunks' worth so the chunk directory itself has to grow.
  const size_t initial = Dataset::kChunkRows * 2 + 17;
  for (size_t i = 0; i < initial; ++i) {
    dataset.Append(MakeRow(kDims, static_cast<double>(i)));
  }
  std::vector<const double*> before(initial);
  for (size_t i = 0; i < initial; ++i) {
    before[i] = dataset.Row(static_cast<PointId>(i)).data();
  }

  // Appending several more chunks must perform zero reallocation of any
  // existing row's storage.
  for (size_t i = 0; i < Dataset::kChunkRows * 3; ++i) {
    dataset.Append(MakeRow(kDims, -1.0));
  }
  for (size_t i = 0; i < initial; ++i) {
    EXPECT_EQ(dataset.Row(static_cast<PointId>(i)).data(), before[i])
        << "row " << i << " storage moved across appends";
    EXPECT_EQ(dataset.At(static_cast<PointId>(i), 0),
              static_cast<double>(i));
  }
}

TEST(DatasetWindowTest, AppendRowsKeepsPointersStableMidBatch) {
  constexpr int kDims = 2;
  Dataset dataset(kDims);
  dataset.Append(MakeRow(kDims, 1.0));
  const double* p0 = dataset.Row(0).data();
  std::vector<std::vector<double>> batch(Dataset::kChunkRows * 2,
                                         MakeRow(kDims, 2.0));
  ASSERT_TRUE(dataset.AppendRows(batch).ok());
  EXPECT_EQ(dataset.Row(0).data(), p0);
  EXPECT_EQ(dataset.size(), 1 + batch.size());
}

TEST(DatasetWindowTest, DeleteRowsTombstonesAndVersions) {
  Dataset dataset(2);
  for (int i = 0; i < 10; ++i) dataset.Append(MakeRow(2, i));
  const uint64_t v = dataset.version();
  ASSERT_EQ(v, 10u);

  const std::vector<PointId> ids = {2, 7};
  auto result = dataset.DeleteRows(ids);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, v + 2);  // +1 version per tombstoned row
  EXPECT_EQ(dataset.version(), v + 2);
  EXPECT_EQ(dataset.last_tombstone_version(), v + 2);

  EXPECT_FALSE(dataset.IsLive(2));
  EXPECT_FALSE(dataset.IsLive(7));
  EXPECT_TRUE(dataset.IsLive(0));
  EXPECT_TRUE(dataset.IsLive(9));
  EXPECT_EQ(dataset.size(), 10u);  // ids are stable; size never shrinks
  EXPECT_EQ(dataset.live_size(), 8u);
  EXPECT_EQ(dataset.num_tombstones(), 2u);
  // Version bookkeeping survives the tombstone.
  EXPECT_EQ(dataset.RowVersion(2), 3u);
}

TEST(DatasetWindowTest, DeleteRowsIsAllOrNothing) {
  Dataset dataset(1);
  for (int i = 0; i < 5; ++i) dataset.Append(MakeRow(1, i));

  // Out-of-range id: nothing deleted.
  {
    const std::vector<PointId> ids = {1, 99};
    auto result = dataset.DeleteRows(ids);
    EXPECT_TRUE(result.status().IsOutOfRange());
    EXPECT_EQ(dataset.live_size(), 5u);
    EXPECT_TRUE(dataset.IsLive(1));
  }
  // Duplicate id in the batch: nothing deleted.
  {
    const std::vector<PointId> ids = {3, 3};
    auto result = dataset.DeleteRows(ids);
    EXPECT_TRUE(result.status().IsInvalidArgument());
    EXPECT_TRUE(dataset.IsLive(3));
  }
  // Deleting a dead row: NotFound, nothing else deleted.
  {
    const std::vector<PointId> first = {0};
    ASSERT_TRUE(dataset.DeleteRows(first).ok());
    const std::vector<PointId> ids = {1, 0};
    auto result = dataset.DeleteRows(ids);
    EXPECT_TRUE(result.status().IsNotFound());
    EXPECT_TRUE(dataset.IsLive(1));
    EXPECT_EQ(dataset.live_size(), 4u);
  }
}

TEST(DatasetWindowTest, EvictBeforeUsesAppendVersions) {
  Dataset dataset(1);
  for (int i = 0; i < 8; ++i) dataset.Append(MakeRow(1, i));
  // Rows 0..7 carry append versions 1..8; evict everything appended
  // before version 4 (rows 0, 1, 2).
  EXPECT_EQ(dataset.EvictBefore(4), 3u);
  EXPECT_FALSE(dataset.IsLive(0));
  EXPECT_FALSE(dataset.IsLive(2));
  EXPECT_TRUE(dataset.IsLive(3));
  EXPECT_EQ(dataset.live_size(), 5u);
  // Idempotent at the same watermark: the dead rows do not re-evict.
  EXPECT_EQ(dataset.EvictBefore(4), 0u);
}

TEST(DatasetWindowTest, EvictOldestSlidesTheWindow) {
  Dataset dataset(1);
  for (int i = 0; i < 6; ++i) dataset.Append(MakeRow(1, i));
  EXPECT_EQ(dataset.EvictOldest(2), 2u);
  EXPECT_FALSE(dataset.IsLive(0));
  EXPECT_FALSE(dataset.IsLive(1));
  EXPECT_TRUE(dataset.IsLive(2));
  // Next eviction starts from the oldest *live* row.
  EXPECT_EQ(dataset.EvictOldest(1), 1u);
  EXPECT_FALSE(dataset.IsLive(2));
  // Asking for more than remains evicts what is there.
  EXPECT_EQ(dataset.EvictOldest(100), 3u);
  EXPECT_EQ(dataset.live_size(), 0u);
}

TEST(DatasetWindowTest, CountLiveBeforeMatchesBruteForce) {
  Dataset dataset(1);
  const size_t n = Dataset::kChunkRows + 70;  // spans a word boundary mix
  for (size_t i = 0; i < n; ++i) dataset.Append(MakeRow(1, 0.0));
  const std::vector<PointId> dead = {0, 63, 64, 65, 127, 128, 200,
                                     static_cast<PointId>(n - 1)};
  ASSERT_TRUE(dataset.DeleteRows(dead).ok());
  for (size_t end : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                     size_t{65}, size_t{128}, size_t{129}, n / 2, n, n + 5}) {
    size_t expected = 0;
    for (size_t i = 0; i < std::min(end, n); ++i) {
      if (dataset.IsLive(static_cast<PointId>(i))) ++expected;
    }
    EXPECT_EQ(dataset.CountLiveBefore(end), expected) << "end=" << end;
  }
}

TEST(DatasetWindowTest, ChurnCountsDeltaAndUnsealedTombstones) {
  Dataset dataset(1);
  for (int i = 0; i < 10; ++i) dataset.Append(MakeRow(1, i));
  ASSERT_TRUE(dataset.DeleteRows(std::vector<PointId>{0}).ok());
  dataset.SealBase();  // folds the existing tombstone
  EXPECT_EQ(dataset.unsealed_tombstones(), 0u);
  EXPECT_DOUBLE_EQ(dataset.churn_fraction(), 0.0);

  dataset.Append(MakeRow(1, 10.0));  // delta: 1
  ASSERT_TRUE(dataset.DeleteRows(std::vector<PointId>{1, 2}).ok());
  EXPECT_EQ(dataset.delta_size(), 1u);
  EXPECT_EQ(dataset.unsealed_tombstones(), 2u);
  EXPECT_EQ(dataset.live_size(), 8u);
  EXPECT_DOUBLE_EQ(dataset.churn_fraction(), 3.0 / 8.0);
}

TEST(DatasetWindowTest, ReclaimDeadChunksFreesOnlyWhollyDeadSealedChunks) {
  constexpr int kDims = 2;
  Dataset dataset(kDims);
  const size_t n = Dataset::kChunkRows * 3;
  for (size_t i = 0; i < n; ++i) {
    dataset.Append(MakeRow(kDims, static_cast<double>(i)));
  }
  // Kill all of chunk 0 and half of chunk 1.
  std::vector<PointId> dead;
  for (size_t i = 0; i < Dataset::kChunkRows + Dataset::kChunkRows / 2;
       ++i) {
    dead.push_back(static_cast<PointId>(i));
  }
  ASSERT_TRUE(dataset.DeleteRows(dead).ok());

  // Unsealed: nothing reclaimable yet.
  EXPECT_EQ(dataset.ReclaimDeadChunks(), 0u);
  EXPECT_EQ(dataset.allocated_chunks(), 3u);

  dataset.SealBase();
  EXPECT_EQ(dataset.ReclaimDeadChunks(), 1u);  // chunk 0 only
  EXPECT_EQ(dataset.allocated_chunks(), 2u);
  // Version bookkeeping for reclaimed rows stays valid (TTL eviction
  // needs it), and live rows elsewhere are untouched.
  EXPECT_EQ(dataset.RowVersion(0), 1u);
  const PointId live_id =
      static_cast<PointId>(Dataset::kChunkRows + Dataset::kChunkRows / 2);
  EXPECT_TRUE(dataset.IsLive(live_id));
  EXPECT_EQ(dataset.At(live_id, 0), static_cast<double>(live_id));
  // Reclaiming again is a no-op.
  EXPECT_EQ(dataset.ReclaimDeadChunks(), 0u);
}

TEST(DatasetWindowTest, ComputeColumnStatsSeesOnlySurvivors) {
  Dataset windowed(2);
  windowed.Append(std::vector<double>{1.0, 10.0});
  windowed.Append(std::vector<double>{100.0, -100.0});  // to be deleted
  windowed.Append(std::vector<double>{3.0, 30.0});
  ASSERT_TRUE(windowed.DeleteRows(std::vector<PointId>{1}).ok());

  Dataset fresh(2);
  fresh.Append(std::vector<double>{1.0, 10.0});
  fresh.Append(std::vector<double>{3.0, 30.0});

  auto ws = ComputeColumnStats(windowed);
  auto fs = ComputeColumnStats(fresh);
  for (int j = 0; j < 2; ++j) {
    EXPECT_EQ(ws[j].min, fs[j].min);
    EXPECT_EQ(ws[j].max, fs[j].max);
    EXPECT_EQ(ws[j].mean, fs[j].mean);
    EXPECT_EQ(ws[j].stddev, fs[j].stddev);
  }
}

TEST(DatasetWindowTest, CopyIsDeepAndPreservesWindowState) {
  Dataset original(1);
  for (int i = 0; i < 5; ++i) original.Append(MakeRow(1, i));
  ASSERT_TRUE(original.DeleteRows(std::vector<PointId>{1}).ok());
  original.SealBase();

  Dataset copy = original;
  EXPECT_EQ(copy.size(), original.size());
  EXPECT_EQ(copy.live_size(), original.live_size());
  EXPECT_FALSE(copy.IsLive(1));
  EXPECT_EQ(copy.base_size(), original.base_size());
  EXPECT_EQ(copy.version(), original.version());
  EXPECT_NE(copy.Row(0).data(), original.Row(0).data());  // deep

  copy.Set(0, 0, 42.0);
  EXPECT_EQ(original.At(0, 0), 0.0);  // original untouched
}

}  // namespace
}  // namespace hos::data
