#include "src/data/generator.h"

#include <gtest/gtest.h>

#include "src/knn/linear_scan.h"

namespace hos::data {
namespace {

TEST(GenerateUniformTest, ShapeAndRange) {
  Rng rng(1);
  Dataset ds = GenerateUniform(100, 5, &rng);
  EXPECT_EQ(ds.size(), 100u);
  EXPECT_EQ(ds.num_dims(), 5);
  for (PointId i = 0; i < ds.size(); ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_GE(ds.At(i, j), 0.0);
      EXPECT_LT(ds.At(i, j), 1.0);
    }
  }
}

TEST(GenerateGaussianMixtureTest, StaysInUnitBox) {
  Rng rng(2);
  GaussianMixtureSpec spec;
  spec.num_points = 500;
  spec.num_dims = 4;
  Dataset ds = GenerateGaussianMixture(spec, &rng);
  EXPECT_EQ(ds.size(), 500u);
  for (PointId i = 0; i < ds.size(); ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_GE(ds.At(i, j), 0.0);
      EXPECT_LE(ds.At(i, j), 1.0);
    }
  }
}

TEST(GenerateGaussianMixtureTest, ClustersAreTight) {
  Rng rng(3);
  GaussianMixtureSpec spec;
  spec.num_points = 400;
  spec.num_dims = 2;
  spec.num_clusters = 1;
  spec.cluster_stddev = 0.01;
  Dataset ds = GenerateGaussianMixture(spec, &rng);
  auto stats = ComputeColumnStats(ds);
  // Single tight cluster: column stddev close to the cluster stddev.
  EXPECT_LT(stats[0].stddev, 0.05);
}

TEST(GenerateSubspaceOutliersTest, ValidatesOverlap) {
  Rng rng(4);
  SubspaceOutlierSpec spec;
  spec.num_dims = 6;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2}),
                            Subspace::FromOneBased({2, 3})};
  auto result = GenerateSubspaceOutliers(spec, &rng);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(GenerateSubspaceOutliersTest, ValidatesDimRange) {
  Rng rng(4);
  SubspaceOutlierSpec spec;
  spec.num_dims = 4;
  spec.planted_subspaces = {Subspace::FromOneBased({4, 5})};
  EXPECT_FALSE(GenerateSubspaceOutliers(spec, &rng).ok());
}

TEST(GenerateSubspaceOutliersTest, ValidatesDisplacementVsNoise) {
  Rng rng(4);
  SubspaceOutlierSpec spec;
  spec.num_dims = 4;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.01;
  spec.noise = 0.01;
  EXPECT_FALSE(GenerateSubspaceOutliers(spec, &rng).ok());
}

TEST(GenerateSubspaceOutliersTest, PlantsRequestedOutliers) {
  Rng rng(5);
  SubspaceOutlierSpec spec;
  spec.num_points = 300;
  spec.num_dims = 6;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2}),
                            Subspace::FromOneBased({4, 5, 6})};
  spec.outliers_per_subspace = 2;
  auto result = GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->dataset.size(), 304u);  // 300 background + 4 planted
  ASSERT_EQ(result->outliers.size(), 4u);
  EXPECT_EQ(result->outliers[0].subspace, spec.planted_subspaces[0]);
  EXPECT_EQ(result->outliers[2].subspace, spec.planted_subspaces[1]);
  // Planted rows are appended after the background.
  EXPECT_GE(result->outliers[0].id, 300u);
}

// The core property of the hyperplane construction: the planted point is
// far from everything in its subspace but ordinary in proper sub-subspaces.
TEST(GenerateSubspaceOutliersTest, PlantedPointIsSubspaceOutlier) {
  Rng rng(6);
  SubspaceOutlierSpec spec;
  spec.num_points = 600;
  spec.num_dims = 5;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.35;
  auto result = GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result->dataset;
  const PointId planted = result->outliers[0].id;
  const Subspace target = result->outliers[0].subspace;

  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  const int k = 5;
  auto od = [&](const Subspace& s) {
    knn::KnnQuery q;
    auto row = ds.Row(planted);
    q.point = row;
    q.subspace = s;
    q.k = k;
    q.exclude = planted;
    return knn::OutlyingDegree(engine, q);
  };

  double od_target = od(target);
  // In the planted subspace the point sits ~displacement from the
  // hyperplane holding all background points.
  EXPECT_GT(od_target, 0.25 * k);
  // In each singleton dimension it is unremarkable.
  for (int dim : target.Dims()) {
    EXPECT_LT(od(Subspace::FromDims({dim})), 0.1 * k)
        << "dim " << dim;
  }
  // In an unrelated subspace it is unremarkable.
  EXPECT_LT(od(Subspace::FromOneBased({3, 4})), 0.2 * k);
}

TEST(GenerateShiftOutliersTest, ShiftedDimsOutOfRange) {
  Rng rng(7);
  ShiftOutlierSpec spec;
  spec.num_points = 200;
  spec.num_dims = 4;
  spec.planted_subspaces = {Subspace::FromOneBased({2})};
  spec.shift = 2.0;
  auto result = GenerateShiftOutliers(spec, &rng);
  ASSERT_TRUE(result.ok());
  const PointId planted = result->outliers[0].id;
  // Background lives in [0,1]; the shifted dim exceeds it.
  EXPECT_GT(result->dataset.At(planted, 1), 1.5);
  EXPECT_LE(result->dataset.At(planted, 0), 1.0);
}

TEST(GenerateFigure1ScenarioTest, NeedsFourDims) {
  Rng rng(8);
  EXPECT_FALSE(GenerateFigure1Scenario(100, 3, &rng).ok());
}

TEST(GenerateFigure1ScenarioTest, PlantsInView12) {
  Rng rng(8);
  auto result = GenerateFigure1Scenario(300, 6, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->outliers.size(), 1u);
  EXPECT_EQ(result->outliers[0].subspace, Subspace::FromOneBased({1, 2}));
}

TEST(GeneratorsAreDeterministicTest, SameSeedSameData) {
  Rng rng_a(99), rng_b(99);
  SubspaceOutlierSpec spec;
  spec.num_points = 50;
  spec.num_dims = 4;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  auto a = GenerateSubspaceOutliers(spec, &rng_a);
  auto b = GenerateSubspaceOutliers(spec, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->dataset.size(), b->dataset.size());
  for (PointId i = 0; i < a->dataset.size(); ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(a->dataset.At(i, j), b->dataset.At(i, j));
    }
  }
}

}  // namespace
}  // namespace hos::data
