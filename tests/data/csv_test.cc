#include "src/data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace hos::data {
namespace {

TEST(CsvTest, ParseWithHeader) {
  auto result = ParseCsv("x,y\n1.5,2\n3,4.25\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& ds = *result;
  EXPECT_EQ(ds.num_dims(), 2);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds.column_names(), (std::vector<std::string>{"x", "y"}));
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(ds.At(1, 1), 4.25);
}

TEST(CsvTest, ParseWithoutHeader) {
  CsvOptions options;
  options.has_header = false;
  auto result = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
  EXPECT_EQ(result->column_names()[0], "dim1");
}

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto result = ParseCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(0, 1), 2.0);
}

TEST(CsvTest, SkipsBlankLines) {
  auto result = ParseCsv("x,y\n1,2\n\n3,4\n\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(CsvTest, HandlesCrLf) {
  auto result = ParseCsv("x,y\r\n1,2\r\n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(0, 0), 1.0);
}

TEST(CsvTest, TrimsSpacesAroundNumbers) {
  auto result = ParseCsv("x,y\n 1 , 2 \n");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->At(0, 1), 2.0);
}

TEST(CsvTest, RejectsRaggedRows) {
  auto result = ParseCsv("x,y\n1,2\n3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(CsvTest, RejectsNonNumeric) {
  auto result = ParseCsv("x,y\n1,two\n");
  ASSERT_FALSE(result.ok());
  // Error message pinpoints the cell.
  EXPECT_NE(result.status().message().find("row 2"), std::string::npos);
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, HeaderOnlyYieldsEmptyDataset) {
  auto result = ParseCsv("x,y\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_dims(), 2);
  EXPECT_TRUE(result->empty());
}

TEST(CsvTest, RoundTripThroughText) {
  Dataset ds(2);
  ASSERT_TRUE(ds.SetColumnNames({"alpha", "beta"}).ok());
  ds.Append(std::vector<double>{0.125, -3.5});
  ds.Append(std::vector<double>{7.0, 0.0});
  auto parsed = ParseCsv(ToCsv(ds));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), ds.size());
  EXPECT_EQ(parsed->column_names(), ds.column_names());
  for (PointId i = 0; i < ds.size(); ++i) {
    for (int j = 0; j < ds.num_dims(); ++j) {
      EXPECT_DOUBLE_EQ(parsed->At(i, j), ds.At(i, j));
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  Dataset ds(1);
  ds.Append(std::vector<double>{42.0});
  std::string path =
      (std::filesystem::temp_directory_path() / "hos_csv_test.csv").string();
  ASSERT_TRUE(WriteCsvFile(ds, path).ok());
  auto loaded = ReadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->At(0, 0), 42.0);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto result = ReadCsvFile("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError());
}

}  // namespace
}  // namespace hos::data
