#include "src/data/kmeans.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"

namespace hos::data {
namespace {

TEST(KMeansTest, ValidatesInput) {
  Rng rng(1);
  Dataset ds = GenerateUniform(5, 2, &rng);
  KMeansOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(KMeans(ds, options, &rng).ok());
  options.num_clusters = 10;  // more clusters than points
  EXPECT_FALSE(KMeans(ds, options, &rng).ok());
}

TEST(KMeansTest, SingleClusterIsCentroid) {
  Dataset ds(2);
  ds.Append(std::vector<double>{0.0, 0.0});
  ds.Append(std::vector<double>{2.0, 0.0});
  ds.Append(std::vector<double>{1.0, 3.0});
  Rng rng(2);
  KMeansOptions options;
  options.num_clusters = 1;
  auto result = KMeans(ds, options, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->centroids[0][0], 1.0, 1e-9);
  EXPECT_NEAR(result->centroids[0][1], 1.0, 1e-9);
  for (int a : result->assignment) EXPECT_EQ(a, 0);
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Rng rng(3);
  Dataset ds(2);
  // Three tight blobs far apart.
  const std::vector<std::pair<double, double>> centers = {
      {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  for (const auto& [cx, cy] : centers) {
    for (int i = 0; i < 50; ++i) {
      ds.Append(std::vector<double>{cx + rng.Gaussian(0, 0.1),
                                    cy + rng.Gaussian(0, 0.1)});
    }
  }
  KMeansOptions options;
  options.num_clusters = 3;
  auto result = KMeans(ds, options, &rng);
  ASSERT_TRUE(result.ok());
  // Points of each blob share a label, and labels differ across blobs.
  std::vector<int> blob_label(3);
  for (int b = 0; b < 3; ++b) {
    blob_label[b] = result->assignment[b * 50];
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(result->assignment[b * 50 + i], blob_label[b]);
    }
  }
  EXPECT_NE(blob_label[0], blob_label[1]);
  EXPECT_NE(blob_label[1], blob_label[2]);
  EXPECT_NE(blob_label[0], blob_label[2]);
  // Tight blobs: inertia tiny relative to the blob separation.
  EXPECT_LT(result->inertia, 50.0);
}

TEST(KMeansTest, InertiaNeverWorseThanSingleCluster) {
  Rng rng(4);
  Dataset ds = GenerateUniform(300, 4, &rng);
  KMeansOptions one;
  one.num_clusters = 1;
  KMeansOptions eight;
  eight.num_clusters = 8;
  Rng rng_a(4), rng_b(4);
  auto r1 = KMeans(ds, one, &rng_a);
  auto r8 = KMeans(ds, eight, &rng_b);
  ASSERT_TRUE(r1.ok() && r8.ok());
  EXPECT_LE(r8->inertia, r1->inertia);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng data_rng(5);
  Dataset ds = GenerateUniform(200, 3, &data_rng);
  KMeansOptions options;
  options.num_clusters = 4;
  Rng rng_a(5), rng_b(5);
  auto a = KMeans(ds, options, &rng_a);
  auto b = KMeans(ds, options, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
}

TEST(KMeansTest, AssignmentIsNearestCentroid) {
  Rng rng(6);
  Dataset ds = GenerateUniform(150, 3, &rng);
  KMeansOptions options;
  options.num_clusters = 5;
  auto result = KMeans(ds, options, &rng);
  ASSERT_TRUE(result.ok());
  for (PointId i = 0; i < ds.size(); ++i) {
    auto row = ds.Row(i);
    double assigned_sq = 0.0;
    for (int j = 0; j < 3; ++j) {
      double diff = row[j] - result->centroids[result->assignment[i]][j];
      assigned_sq += diff * diff;
    }
    for (int c = 0; c < 5; ++c) {
      double sq = 0.0;
      for (int j = 0; j < 3; ++j) {
        double diff = row[j] - result->centroids[c][j];
        sq += diff * diff;
      }
      EXPECT_GE(sq + 1e-9, assigned_sq) << "point " << i << " cluster " << c;
    }
  }
}

}  // namespace
}  // namespace hos::data
