#include "src/data/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hos::data {
namespace {

TEST(DatasetTest, EmptyConstruction) {
  Dataset ds(3);
  EXPECT_EQ(ds.num_dims(), 3);
  EXPECT_EQ(ds.size(), 0u);
  EXPECT_TRUE(ds.empty());
  EXPECT_EQ(ds.column_names(),
            (std::vector<std::string>{"dim1", "dim2", "dim3"}));
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset ds(2);
  PointId a = ds.Append(std::vector<double>{1.0, 2.0});
  PointId b = ds.Append(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(ds.size(), 2u);
  EXPECT_DOUBLE_EQ(ds.At(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(ds.At(1, 0), 3.0);
  auto row = ds.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 4.0);
}

TEST(DatasetTest, SetMutatesCell) {
  Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 2.0});
  ds.Set(0, 0, 9.0);
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 9.0);
}

TEST(DatasetTest, RowCopyIsIndependent) {
  Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 2.0});
  auto copy = ds.RowCopy(0);
  copy[0] = 100.0;
  EXPECT_DOUBLE_EQ(ds.At(0, 0), 1.0);
}

TEST(DatasetTest, FromRowsValidatesShape) {
  auto ok = Dataset::FromRows({{1.0, 2.0}, {3.0, 4.0}}, 2);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);

  auto bad = Dataset::FromRows({{1.0, 2.0}, {3.0}}, 2);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());

  auto bad_dims = Dataset::FromRows({}, 0);
  EXPECT_FALSE(bad_dims.ok());
}

TEST(DatasetTest, SetColumnNamesValidated) {
  Dataset ds(2);
  EXPECT_TRUE(ds.SetColumnNames({"x", "y"}).ok());
  EXPECT_EQ(ds.column_names()[0], "x");
  EXPECT_FALSE(ds.SetColumnNames({"only-one"}).ok());
}

TEST(DatasetVersionTest, AppendsAndSetsBumpTheVersion) {
  Dataset ds(2);
  EXPECT_EQ(ds.version(), 0u);
  ds.Append(std::vector<double>{1.0, 2.0});
  EXPECT_EQ(ds.version(), 1u);
  ds.Append(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(ds.version(), 2u);
  EXPECT_EQ(ds.last_overwrite_version(), 0u);  // appends are not overwrites

  ds.Set(0, 1, 5.0);
  EXPECT_EQ(ds.version(), 3u);
  EXPECT_EQ(ds.last_overwrite_version(), 3u);

  ds.Append(std::vector<double>{6.0, 7.0});
  EXPECT_EQ(ds.version(), 4u);
  EXPECT_EQ(ds.last_overwrite_version(), 3u);  // sticks at the last Set
}

TEST(DatasetVersionTest, AppendRowsValidatesAtomicallyAndReturnsVersion) {
  Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 2.0});
  auto version = ds.AppendRows({{3.0, 4.0}, {5.0, 6.0}});
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 3u);
  EXPECT_EQ(ds.size(), 3u);

  // A malformed row anywhere in the batch appends nothing.
  auto bad = ds.AppendRows({{7.0, 8.0}, {9.0}});
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.version(), 3u);
}

TEST(DatasetVersionTest, SealBaseTracksTheBaseDeltaSplit) {
  Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 2.0});
  ds.Append(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(ds.base_size(), 0u);  // nothing sealed yet
  EXPECT_EQ(ds.delta_size(), 2u);

  ds.SealBase();
  EXPECT_EQ(ds.base_size(), 2u);
  EXPECT_EQ(ds.delta_size(), 0u);
  EXPECT_DOUBLE_EQ(ds.delta_fraction(), 0.0);

  ds.Append(std::vector<double>{5.0, 6.0});
  ds.Append(std::vector<double>{7.0, 8.0});
  EXPECT_EQ(ds.base_size(), 2u);
  EXPECT_EQ(ds.delta_size(), 2u);
  EXPECT_DOUBLE_EQ(ds.delta_fraction(), 0.5);

  // Sealing at an earlier row count (a rebuild commit whose artifacts
  // were prepared before the last append) clamps to that prefix.
  ds.SealBaseAt(3);
  EXPECT_EQ(ds.base_size(), 3u);
  EXPECT_EQ(ds.delta_size(), 1u);
  ds.SealBaseAt(100);  // clamped to size
  EXPECT_EQ(ds.base_size(), 4u);
}

TEST(ColumnStatsTest, ComputesMinMaxMeanStddev) {
  Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 10.0});
  ds.Append(std::vector<double>{2.0, 10.0});
  ds.Append(std::vector<double>{3.0, 10.0});
  auto stats = ComputeColumnStats(ds);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].min, 1.0);
  EXPECT_DOUBLE_EQ(stats[0].max, 3.0);
  EXPECT_DOUBLE_EQ(stats[0].mean, 2.0);
  EXPECT_NEAR(stats[0].stddev, std::sqrt(2.0 / 3.0), 1e-12);
  // Constant column: zero spread.
  EXPECT_DOUBLE_EQ(stats[1].stddev, 0.0);
  EXPECT_DOUBLE_EQ(stats[1].mean, 10.0);
}

TEST(ColumnStatsTest, EmptyDatasetYieldsZeros) {
  Dataset ds(2);
  auto stats = ComputeColumnStats(ds);
  EXPECT_EQ(stats.size(), 2u);
  EXPECT_DOUBLE_EQ(stats[0].mean, 0.0);
}

}  // namespace
}  // namespace hos::data
