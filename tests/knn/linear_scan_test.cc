#include "src/knn/linear_scan.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/generator.h"

namespace hos::knn {
namespace {

data::Dataset Grid1D() {
  data::Dataset ds(1);
  for (int i = 0; i < 10; ++i) {
    ds.Append(std::vector<double>{static_cast<double>(i)});
  }
  return ds;
}

TEST(LinearScanTest, FindsNearestInOrder) {
  data::Dataset ds = Grid1D();
  LinearScanKnn engine(ds, MetricKind::kL2);
  std::vector<double> q{3.2};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(1);
  query.k = 3;
  auto result = engine.Search(query);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0].id, 3u);
  EXPECT_EQ(result[1].id, 4u);
  EXPECT_EQ(result[2].id, 2u);
  EXPECT_NEAR(result[0].distance, 0.2, 1e-12);
  // Ascending distances.
  EXPECT_LE(result[0].distance, result[1].distance);
  EXPECT_LE(result[1].distance, result[2].distance);
}

TEST(LinearScanTest, ExcludeRemovesSelf) {
  data::Dataset ds = Grid1D();
  LinearScanKnn engine(ds, MetricKind::kL2);
  auto row = ds.Row(5);
  KnnQuery query;
  query.point = row;
  query.subspace = Subspace::Full(1);
  query.k = 2;
  query.exclude = data::PointId{5};
  auto result = engine.Search(query);
  ASSERT_EQ(result.size(), 2u);
  for (const auto& n : result) EXPECT_NE(n.id, 5u);
  // Ties at distance 1 (ids 4 and 6) break by id.
  EXPECT_EQ(result[0].id, 4u);
  EXPECT_EQ(result[1].id, 6u);
}

TEST(LinearScanTest, KLargerThanDataset) {
  data::Dataset ds = Grid1D();
  LinearScanKnn engine(ds, MetricKind::kL2);
  std::vector<double> q{0.0};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(1);
  query.k = 100;
  EXPECT_EQ(engine.Search(query).size(), 10u);
}

TEST(LinearScanTest, KZeroReturnsEmpty) {
  data::Dataset ds = Grid1D();
  LinearScanKnn engine(ds, MetricKind::kL2);
  std::vector<double> q{0.0};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(1);
  query.k = 0;
  EXPECT_TRUE(engine.Search(query).empty());
}

TEST(LinearScanTest, SubspaceChangesNeighbors) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{0.0, 100.0});  // far in dim 2
  ds.Append(std::vector<double>{50.0, 0.1});   // far in dim 1
  LinearScanKnn engine(ds, MetricKind::kL2);
  std::vector<double> q{0.0, 0.0};
  KnnQuery query;
  query.point = q;
  query.k = 1;
  query.subspace = Subspace::FromDims({0});
  EXPECT_EQ(engine.Search(query)[0].id, 0u);
  query.subspace = Subspace::FromDims({1});
  EXPECT_EQ(engine.Search(query)[0].id, 1u);
}

TEST(LinearScanTest, RangeSearchInclusive) {
  data::Dataset ds = Grid1D();
  LinearScanKnn engine(ds, MetricKind::kL2);
  std::vector<double> q{5.0};
  auto result = engine.RangeSearch(q, Subspace::Full(1), 2.0);
  // ids 3..7 are within distance 2 inclusive.
  ASSERT_EQ(result.size(), 5u);
  EXPECT_EQ(result[0].id, 5u);  // distance 0 first
  for (const auto& n : result) {
    EXPECT_LE(n.distance, 2.0);
  }
}

TEST(LinearScanTest, CountsDistanceComputations) {
  data::Dataset ds = Grid1D();
  LinearScanKnn engine(ds, MetricKind::kL2);
  std::vector<double> q{0.0};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(1);
  query.k = 1;
  EXPECT_EQ(engine.distance_computations(), 0u);
  engine.Search(query);
  EXPECT_EQ(engine.distance_computations(), 10u);
}

TEST(OutlyingDegreeTest, SumsKnnDistances) {
  data::Dataset ds = Grid1D();
  LinearScanKnn engine(ds, MetricKind::kL2);
  auto row = ds.Row(0);
  KnnQuery query;
  query.point = row;
  query.subspace = Subspace::Full(1);
  query.k = 3;
  query.exclude = data::PointId{0};
  // Neighbours of 0 (excluding itself): 1, 2, 3 → OD = 1 + 2 + 3 = 6.
  EXPECT_DOUBLE_EQ(OutlyingDegree(engine, query), 6.0);
}

// OD monotonicity (paper §2) holds at the OD level too, because the k-th
// order statistic of coordinatewise-monotone distances is monotone.
TEST(OutlyingDegreeTest, MonotoneInSubspaceInclusion) {
  Rng rng(13);
  data::Dataset ds = data::GenerateUniform(200, 6, &rng);
  LinearScanKnn engine(ds, MetricKind::kL2);
  for (int trial = 0; trial < 50; ++trial) {
    data::PointId id =
        static_cast<data::PointId>(rng.UniformInt(0, ds.size() - 1));
    uint64_t sub = rng.UniformInt(1, (1 << 6) - 1);
    uint64_t super = sub | static_cast<uint64_t>(rng.UniformInt(0, 63));
    auto row = ds.Row(id);
    KnnQuery q;
    q.point = row;
    q.k = 4;
    q.exclude = id;
    q.subspace = Subspace(sub);
    double od_sub = OutlyingDegree(engine, q);
    q.subspace = Subspace(super);
    double od_super = OutlyingDegree(engine, q);
    EXPECT_GE(od_super + 1e-12, od_sub);
  }
}

}  // namespace
}  // namespace hos::knn
