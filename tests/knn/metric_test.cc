#include "src/knn/metric.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace hos::knn {
namespace {

TEST(MetricTest, L2SubspaceDistance) {
  std::vector<double> a{0.0, 0.0, 0.0};
  std::vector<double> b{3.0, 4.0, 100.0};
  Subspace s = Subspace::FromDims({0, 1});
  EXPECT_DOUBLE_EQ(SubspaceDistance(a, b, s, MetricKind::kL2), 5.0);
}

TEST(MetricTest, L1SubspaceDistance) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{2.0, 0.0, 3.0};
  EXPECT_DOUBLE_EQ(
      SubspaceDistance(a, b, Subspace::FromDims({0, 1}), MetricKind::kL1),
      3.0);
}

TEST(MetricTest, LInfSubspaceDistance) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{2.0, 5.0, 3.5};
  EXPECT_DOUBLE_EQ(
      SubspaceDistance(a, b, Subspace::Full(3), MetricKind::kLInf), 3.0);
}

TEST(MetricTest, EmptySubspaceIsZero) {
  std::vector<double> a{1.0}, b{9.0};
  EXPECT_DOUBLE_EQ(SubspaceDistance(a, b, Subspace(), MetricKind::kL2), 0.0);
}

TEST(MetricTest, IgnoresExcludedDimensions) {
  std::vector<double> a{1.0, 5.0};
  std::vector<double> b{1.0, -100.0};
  EXPECT_DOUBLE_EQ(
      SubspaceDistance(a, b, Subspace::FromDims({0}), MetricKind::kL2), 0.0);
}

TEST(MetricTest, FullDistanceEqualsFullSubspace) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b{0.0, 1.0, 5.0, 2.0};
  for (MetricKind m : {MetricKind::kL1, MetricKind::kL2, MetricKind::kLInf}) {
    EXPECT_DOUBLE_EQ(FullDistance(a, b, m),
                     SubspaceDistance(a, b, Subspace::Full(4), m));
  }
}

TEST(MetricTest, Names) {
  EXPECT_EQ(MetricKindToString(MetricKind::kL1), "L1");
  EXPECT_EQ(MetricKindToString(MetricKind::kL2), "L2");
  EXPECT_EQ(MetricKindToString(MetricKind::kLInf), "LInf");
}

// --- Property suite: the monotonicity underpinning the paper's pruning ---

class MetricPropertyTest : public ::testing::TestWithParam<MetricKind> {};

// dist_{s1}(a,b) >= dist_{s2}(a,b) whenever s1 ⊇ s2 (paper §2): verified
// on random points and random nested subspace pairs.
TEST_P(MetricPropertyTest, DistanceMonotoneInSubspaceInclusion) {
  const MetricKind metric = GetParam();
  Rng rng(42);
  const int d = 8;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> a(d), b(d);
    for (int j = 0; j < d; ++j) {
      a[j] = rng.Uniform(-5.0, 5.0);
      b[j] = rng.Uniform(-5.0, 5.0);
    }
    uint64_t sub_mask = rng.UniformInt(1, (1 << d) - 1);
    // Build a superset by adding random bits.
    uint64_t super_mask =
        sub_mask | static_cast<uint64_t>(rng.UniformInt(0, (1 << d) - 1));
    double d_sub = SubspaceDistance(a, b, Subspace(sub_mask), metric);
    double d_super = SubspaceDistance(a, b, Subspace(super_mask), metric);
    EXPECT_GE(d_super, d_sub);
  }
}

TEST_P(MetricPropertyTest, MetricAxiomsOnRandomPoints) {
  const MetricKind metric = GetParam();
  Rng rng(7);
  const int d = 6;
  const Subspace full = Subspace::Full(d);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> a(d), b(d), c(d);
    for (int j = 0; j < d; ++j) {
      a[j] = rng.Uniform(-1.0, 1.0);
      b[j] = rng.Uniform(-1.0, 1.0);
      c[j] = rng.Uniform(-1.0, 1.0);
    }
    double ab = SubspaceDistance(a, b, full, metric);
    double ba = SubspaceDistance(b, a, full, metric);
    double ac = SubspaceDistance(a, c, full, metric);
    double cb = SubspaceDistance(c, b, full, metric);
    EXPECT_DOUBLE_EQ(ab, ba);                      // symmetry
    EXPECT_GE(ab, 0.0);                            // non-negativity
    EXPECT_LE(ab, ac + cb + 1e-12);                // triangle inequality
    EXPECT_DOUBLE_EQ(SubspaceDistance(a, a, full, metric), 0.0);  // identity
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricPropertyTest,
                         ::testing::Values(MetricKind::kL1, MetricKind::kL2,
                                           MetricKind::kLInf),
                         [](const auto& info) {
                           return std::string(MetricKindToString(info.param));
                         });

}  // namespace
}  // namespace hos::knn
