// Degenerate-input fuzzing for the batched distance kernel, in the style of
// xtree_fuzz_test / lattice_fuzz_test: seeded RNG sweeps over duplicate
// points, zero-variance dimensions, candidate blocks smaller than the
// kernel's unroll width, k >= n and empty subspaces, always checked against
// the scalar knn::SubspaceDistance oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/data/dataset.h"
#include "src/kernels/batched_distance.h"
#include "src/kernels/dataset_view.h"
#include "src/knn/linear_scan.h"
#include "src/knn/metric.h"

namespace hos::kernels {
namespace {

using knn::KnnQuery;
using knn::MetricKind;
using knn::Neighbor;

constexpr MetricKind kMetrics[] = {MetricKind::kL1, MetricKind::kL2,
                                   MetricKind::kLInf};

/// Degenerate dataset: clusters of exact duplicates, zero-variance
/// dimensions, and a few isolated points.
data::Dataset MakeDegenerate(size_t n, int d, Rng* rng) {
  data::Dataset ds(d);
  std::vector<double> row(d);
  const int zero_variance_dim = static_cast<int>(rng->UniformInt(0, d - 1));
  while (ds.size() < n) {
    for (int dim = 0; dim < d; ++dim) {
      row[dim] = dim == zero_variance_dim ? 0.25 : rng->Uniform();
    }
    // Each drawn row is appended 1..4 times: exact duplicates are common.
    const int copies = 1 + static_cast<int>(rng->UniformInt(0, 3));
    for (int c = 0; c < copies && ds.size() < n; ++c) {
      ds.Append(row);
    }
  }
  return ds;
}

TEST(KernelFuzzTest, TinyBlocksAndDuplicatesMatchOracle) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    // Deliberately spans sizes below, at, and just above the unroll width.
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(
                             0, static_cast<int64_t>(2 * kDistanceBlock)));
    const int d = 1 + static_cast<int>(rng.UniformInt(0, 9));
    data::Dataset ds = MakeDegenerate(n, d, &rng);
    DatasetView view = DatasetView::Build(ds);
    const MetricKind metric = kMetrics[seed % 3];

    std::vector<double> q(d);
    for (auto& v : q) v = rng.Bernoulli(0.3) ? 0.25 : rng.Uniform(-1.0, 2.0);
    const Subspace subspace =
        rng.Bernoulli(0.15)
            ? Subspace()  // empty: every distance is exactly 0
            : Subspace(1 + static_cast<uint64_t>(rng.UniformInt(
                           0, (int64_t{1} << d) - 2)));

    // Oracle distances.
    std::vector<double> want(n);
    for (data::PointId id = 0; id < n; ++id) {
      want[id] = knn::SubspaceDistance(q, ds.Row(id), subspace, metric);
    }

    // Range form over the whole set.
    std::vector<double> got(n);
    BatchedSubspaceDistanceRange(view, q, subspace, metric, 0, n,
                                 kPrunedDistance, got);
    for (data::PointId id = 0; id < n; ++id) {
      ASSERT_EQ(got[id], want[id]) << "seed " << seed << " id " << id;
    }

    // Gathered form over a shuffled subset (blocks smaller than the unroll
    // width, repeated ids allowed).
    std::vector<data::PointId> ids;
    const size_t num_ids = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(n)));
    for (size_t i = 0; i < num_ids; ++i) {
      ids.push_back(static_cast<data::PointId>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1)));
    }
    std::vector<double> gathered(ids.size());
    BatchedSubspaceDistance(view, q, subspace, metric, ids, kPrunedDistance,
                            gathered);
    for (size_t i = 0; i < ids.size(); ++i) {
      ASSERT_EQ(gathered[i], want[ids[i]]) << "seed " << seed;
    }

    // Bounded form with a random (sometimes zero) bound: a pruned candidate
    // must really be beyond the bound, a surviving one exact.
    const double bound = rng.Bernoulli(0.3)
                             ? 0.0
                             : want[rng.UniformInt(0, static_cast<int64_t>(
                                                          n) - 1)];
    std::vector<double> bounded(n);
    BatchedSubspaceDistanceRange(view, q, subspace, metric, 0, n, bound,
                                 bounded);
    for (data::PointId id = 0; id < n; ++id) {
      if (bounded[id] == kPrunedDistance) {
        ASSERT_GT(want[id], bound) << "seed " << seed << " id " << id;
      } else {
        ASSERT_EQ(bounded[id], want[id]) << "seed " << seed << " id " << id;
      }
    }
  }
}

TEST(KernelFuzzTest, TopKScansMatchOracleOnDegenerateData) {
  for (uint64_t seed = 100; seed < 120; ++seed) {
    Rng rng(seed);
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(0, 150));
    const int d = 1 + static_cast<int>(rng.UniformInt(0, 7));
    data::Dataset ds = MakeDegenerate(n, d, &rng);
    const MetricKind metric = kMetrics[seed % 3];
    knn::LinearScanKnn engine(ds, metric);

    for (int trial = 0; trial < 6; ++trial) {
      KnnQuery query;
      std::vector<double> q(d);
      for (auto& v : q) v = rng.Uniform(-0.5, 1.5);
      if (rng.Bernoulli(0.5)) {
        // Query a dataset row (often a duplicate of other rows).
        const auto row = static_cast<data::PointId>(
            rng.UniformInt(0, static_cast<int64_t>(n) - 1));
        q = ds.RowCopy(row);
        query.exclude = row;
      }
      query.point = q;
      query.subspace =
          trial == 0 ? Subspace()
                     : Subspace(1 + static_cast<uint64_t>(rng.UniformInt(
                                    0, (int64_t{1} << d) - 2)));
      // k spans 0, < n, == n and > n.
      query.k = static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(n) + 2));

      // Oracle: scalar metric scan with (distance, id) ordering.
      std::vector<Neighbor> want;
      for (data::PointId id = 0; id < n; ++id) {
        if (query.exclude && *query.exclude == id) continue;
        want.push_back({id, knn::SubspaceDistance(q, ds.Row(id),
                                                  query.subspace, metric)});
      }
      std::sort(want.begin(), want.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  if (a.distance != b.distance) {
                    return a.distance < b.distance;
                  }
                  return a.id < b.id;
                });
      if (want.size() > static_cast<size_t>(query.k)) {
        want.resize(static_cast<size_t>(query.k));
      }

      const auto got = engine.Search(query);
      ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].id, want[i].id) << "seed " << seed << " rank " << i;
        ASSERT_EQ(got[i].distance, want[i].distance)
            << "seed " << seed << " rank " << i;
      }

      // RangeSearch against the same oracle distances.
      const double radius = rng.Uniform(0.0, 1.5);
      auto in_range = engine.RangeSearch(q, query.subspace, radius);
      size_t expect_count = 0;
      for (data::PointId id = 0; id < n; ++id) {
        const double dist =
            knn::SubspaceDistance(q, ds.Row(id), query.subspace, metric);
        if (dist <= radius) ++expect_count;
      }
      ASSERT_EQ(in_range.size(), expect_count) << "seed " << seed;
      for (const auto& neighbor : in_range) {
        ASSERT_LE(neighbor.distance, radius);
      }
    }
  }
}

}  // namespace
}  // namespace hos::kernels
