// Differential suite for the fused multi-point scan entry points
// (ScanAllForTopKMulti / ScanIdsForTopKMulti): for randomized datasets,
// metrics, subspaces, k values and batch sizes straddling kQueryBlock, each
// query point's collector must finish with exactly — bitwise, not
// approximately — the content its sequential ScanAllForTopK /
// ScanIdsForTopK run produces. This is the ground layer of the fused
// multi-query execution stack: every backend batch path and the
// co-scheduled lattice search rest on this identity.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/kernels/batched_distance.h"
#include "src/kernels/dataset_view.h"
#include "src/knn/metric.h"

namespace hos::kernels {
namespace {

using knn::MetricKind;
using knn::Neighbor;

Subspace RandomSubspace(int d, Rng* rng) {
  uint64_t mask = 0;
  for (int dim = 0; dim < d; ++dim) {
    if (rng->UniformInt(0, 1) == 1) mask |= uint64_t{1} << dim;
  }
  if (mask == 0) mask = 1;  // empty subspaces are not searched
  return Subspace(mask);
}

TEST(BatchScanTest, ScanAllMultiMatchesSequentialBitwise) {
  Rng rng(7001);
  for (MetricKind metric :
       {MetricKind::kL2, MetricKind::kL1, MetricKind::kLInf}) {
    for (size_t batch : {1u, 3u, 8u, 17u}) {  // below, at and above kQueryBlock
      const size_t n = 120 + static_cast<size_t>(rng.UniformInt(0, 80));
      const int d = 3 + static_cast<int>(rng.UniformInt(0, 7));
      data::Dataset ds = data::GenerateUniform(n, d, &rng);
      DatasetView view = DatasetView::Build(ds);
      const Subspace subspace = RandomSubspace(d, &rng);
      const int k = 1 + static_cast<int>(rng.UniformInt(0, 7));
      SCOPED_TRACE("metric=" + std::to_string(static_cast<int>(metric)) +
                   " batch=" + std::to_string(batch) + " d=" +
                   std::to_string(d) + " k=" + std::to_string(k));

      // Query points: a mix of dataset rows (self-excluded) and external
      // points (no exclusion).
      std::vector<std::optional<data::PointId>> excludes(batch);
      std::vector<std::vector<double>> external(batch);
      std::vector<TopKCollector> fused;
      std::vector<MultiPointQuery> queries(batch);
      fused.reserve(batch);
      for (size_t b = 0; b < batch; ++b) {
        fused.emplace_back(static_cast<size_t>(k));
        if (b % 2 == 0) {
          const auto id =
              static_cast<data::PointId>(rng.UniformInt(0, n - 1));
          excludes[b] = id;
          queries[b].point = ds.Row(id).data();
        } else {
          for (int dim = 0; dim < d; ++dim) {
            external[b].push_back(rng.Uniform());
          }
          queries[b].point = external[b].data();
        }
        queries[b].exclude = excludes[b];
        queries[b].collector = &fused[b];
      }

      const uint64_t fused_examined =
          ScanAllForTopKMulti(view, queries, subspace, metric);

      uint64_t seq_examined = 0;
      for (size_t b = 0; b < batch; ++b) {
        TopKCollector reference(static_cast<size_t>(k));
        std::span<const double> point(queries[b].point,
                                      static_cast<size_t>(d));
        seq_examined += ScanAllForTopK(view, point, subspace, metric,
                                       excludes[b], &reference);
        EXPECT_EQ(fused[b].TakeSorted(), reference.TakeSorted())
            << "query " << b;
      }
      // The fused pass reports the summed per-point examined counts,
      // matching B sequential scans (the backends' distance counters).
      EXPECT_EQ(fused_examined, seq_examined);
    }
  }
}

TEST(BatchScanTest, ScanIdsMultiMatchesSequentialBitwise) {
  Rng rng(7002);
  const size_t n = 200;
  const int d = 6;
  data::Dataset ds = data::GenerateUniform(n, d, &rng);
  DatasetView view = DatasetView::Build(ds);
  for (MetricKind metric :
       {MetricKind::kL2, MetricKind::kL1, MetricKind::kLInf}) {
    for (size_t batch : {1u, 5u, 8u, 13u}) {
      SCOPED_TRACE("metric=" + std::to_string(static_cast<int>(metric)) +
                   " batch=" + std::to_string(batch));
      const Subspace subspace = RandomSubspace(d, &rng);
      const int k = 2 + static_cast<int>(rng.UniformInt(0, 4));

      // Candidate list with duplicates and every query's excluded id in it
      // — exclusion happens at offer time, per point.
      std::vector<data::PointId> ids;
      for (int i = 0; i < 70; ++i) {
        ids.push_back(static_cast<data::PointId>(rng.UniformInt(0, n - 1)));
      }
      ids.push_back(ids.front());

      std::vector<TopKCollector> fused;
      std::vector<MultiPointQuery> queries(batch);
      std::vector<data::PointId> query_ids(batch);
      fused.reserve(batch);
      for (size_t b = 0; b < batch; ++b) {
        fused.emplace_back(static_cast<size_t>(k));
        query_ids[b] = ids[b % ids.size()];
        queries[b].point = ds.Row(query_ids[b]).data();
        queries[b].exclude = query_ids[b];
        queries[b].collector = &fused[b];
      }

      ScanIdsForTopKMulti(view, queries, subspace, metric, ids);

      for (size_t b = 0; b < batch; ++b) {
        // The sequential entry point has no exclude parameter — its callers
        // pre-filter the candidate list, so the reference does too.
        std::vector<data::PointId> filtered;
        for (data::PointId candidate : ids) {
          if (candidate != query_ids[b]) filtered.push_back(candidate);
        }
        TopKCollector reference(static_cast<size_t>(k));
        ScanIdsForTopK(view, ds.Row(query_ids[b]), subspace, metric, filtered,
                       &reference);
        EXPECT_EQ(fused[b].TakeSorted(), reference.TakeSorted())
            << "query " << b;
      }
    }
  }
}

TEST(BatchScanTest, TombstoneFilteringMatchesSequential) {
  Rng rng(7003);
  const size_t n = 150;
  const int d = 5;
  data::Dataset ds = data::GenerateUniform(n, d, &rng);
  std::vector<data::PointId> dead = {3, 17, 42, 99, 140};
  ASSERT_TRUE(ds.DeleteRows(dead).ok());
  DatasetView view = DatasetView::Build(ds);
  const Subspace full((uint64_t{1} << d) - 1);

  const size_t batch = 9;
  std::vector<TopKCollector> fused;
  std::vector<MultiPointQuery> queries(batch);
  std::vector<data::PointId> query_ids(batch);
  fused.reserve(batch);
  for (size_t b = 0; b < batch; ++b) {
    // Live filter at admission: dead rows can neither enter the answer nor
    // tighten the bound, exactly like the sequential path.
    fused.emplace_back(4, &ds);
    query_ids[b] = static_cast<data::PointId>(2 * b);
    queries[b].point = ds.Row(query_ids[b]).data();
    queries[b].exclude = query_ids[b];
    queries[b].collector = &fused[b];
  }
  ScanAllForTopKMulti(view, queries, full, MetricKind::kL2);

  for (size_t b = 0; b < batch; ++b) {
    TopKCollector reference(4, &ds);
    ScanAllForTopK(view, ds.Row(query_ids[b]), full, MetricKind::kL2,
                   query_ids[b], &reference);
    const std::vector<Neighbor> got = fused[b].TakeSorted();
    EXPECT_EQ(got, reference.TakeSorted()) << "query " << b;
    for (const Neighbor& neighbor : got) {
      EXPECT_TRUE(ds.IsLive(neighbor.id));
    }
  }
}

}  // namespace
}  // namespace hos::kernels
