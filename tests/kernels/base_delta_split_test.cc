// SplitBaseDelta: the one staleness policy every kNN backend shares since
// the versioned-ingest refactor. A snapshot serves as the base exactly
// while the live dataset has only *grown* since it was taken; any in-place
// overwrite disqualifies it entirely.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/kernels/dataset_view.h"

namespace hos::kernels {
namespace {

std::shared_ptr<const DatasetView> Snapshot(const data::Dataset& dataset) {
  return std::make_shared<const DatasetView>(DatasetView::Build(dataset));
}

TEST(BaseDeltaSplitTest, FreshViewCoversEverythingWithEmptyDelta) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 2.0});
  ds.Append(std::vector<double>{3.0, 4.0});
  auto view = Snapshot(ds);
  EXPECT_EQ(view->snapshot_version(), ds.version());

  const BaseDeltaSplit split = SplitBaseDelta(view, ds);
  ASSERT_EQ(split.base, view.get());
  EXPECT_EQ(split.delta_begin, 2u);  // delta [2, 2) is empty
}

TEST(BaseDeltaSplitTest, AppendsMoveTheDeltaBoundaryOnly) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 2.0});
  auto view = Snapshot(ds);
  ds.Append(std::vector<double>{3.0, 4.0});
  ds.Append(std::vector<double>{5.0, 6.0});

  const BaseDeltaSplit split = SplitBaseDelta(view, ds);
  ASSERT_EQ(split.base, view.get());
  EXPECT_EQ(split.delta_begin, 1u);  // rows [1, 3) are the delta
  // The base still matches the first row bit-for-bit.
  EXPECT_EQ(split.base->At(0, 0), ds.At(0, 0));
  EXPECT_EQ(split.base->At(0, 1), ds.At(0, 1));
}

TEST(BaseDeltaSplitTest, OverwriteDisqualifiesTheSnapshot) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 2.0});
  ds.Append(std::vector<double>{3.0, 4.0});
  auto view = Snapshot(ds);
  ds.Set(0, 0, 9.0);

  const BaseDeltaSplit split = SplitBaseDelta(view, ds);
  EXPECT_EQ(split.base, nullptr);
  EXPECT_EQ(split.delta_begin, 0u);

  // A snapshot taken after the overwrite serves again.
  auto fresh = Snapshot(ds);
  EXPECT_EQ(SplitBaseDelta(fresh, ds).base, fresh.get());
}

TEST(BaseDeltaSplitTest, OverwriteBeforeSnapshotIsInvisible) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 2.0});
  ds.Set(0, 1, 7.0);  // mutation *before* the snapshot
  auto view = Snapshot(ds);
  ds.Append(std::vector<double>{3.0, 4.0});

  const BaseDeltaSplit split = SplitBaseDelta(view, ds);
  ASSERT_EQ(split.base, view.get());
  EXPECT_EQ(split.delta_begin, 1u);
}

TEST(BaseDeltaSplitTest, NullViewNeverServes) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{1.0, 2.0});
  const BaseDeltaSplit split = SplitBaseDelta(nullptr, ds);
  EXPECT_EQ(split.base, nullptr);
}

}  // namespace
}  // namespace hos::kernels
