// Differential harness for the batched distance kernel: on randomized
// datasets (varying n, d, metric, normalization) and randomized subspaces —
// including empty, singleton and full — the kernel must reproduce the scalar
// knn::SubspaceDistance path, and every kNN backend wired onto the kernel
// (linear scan, iDistance, VA-file, X-tree) must return exactly the
// neighbour id sequence of a scalar-metric reference scan, with OD values
// within 1e-9. A concurrent section runs the same comparison from several
// threads so the TSan CI job exercises the kernel the way QueryService
// calls it.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/data/normalizer.h"
#include "src/index/idistance.h"
#include "src/index/va_file.h"
#include "src/index/xtree.h"
#include "src/kernels/batched_distance.h"
#include "src/kernels/dataset_view.h"
#include "src/knn/linear_scan.h"
#include "src/knn/metric.h"

namespace hos::kernels {
namespace {

using knn::KnnQuery;
using knn::MetricKind;
using knn::Neighbor;

/// The pre-rewire reference: a brute-force scan through the scalar metric
/// path, sorted ascending (distance, id), truncated to k.
std::vector<Neighbor> ScalarKnn(const data::Dataset& ds, const KnnQuery& query,
                                MetricKind metric) {
  std::vector<Neighbor> all;
  for (data::PointId id = 0; id < ds.size(); ++id) {
    if (query.exclude && *query.exclude == id) continue;
    all.push_back({id, knn::SubspaceDistance(query.point, ds.Row(id),
                                             query.subspace, metric)});
  }
  std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.id < b.id;
  });
  if (all.size() > static_cast<size_t>(std::max(query.k, 0))) {
    all.resize(static_cast<size_t>(std::max(query.k, 0)));
  }
  return all;
}

double OdOf(const std::vector<Neighbor>& neighbors) {
  double sum = 0.0;
  for (const Neighbor& n : neighbors) sum += n.distance;
  return sum;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& got,
                         const std::vector<Neighbor>& want,
                         const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << context << " rank " << i;
    EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9)
        << context << " rank " << i;
  }
  EXPECT_NEAR(OdOf(got), OdOf(want), 1e-9) << context;
}

std::vector<Subspace> TestSubspaces(int d, Rng* rng, int num_random) {
  std::vector<Subspace> out;
  out.push_back(Subspace());                 // empty
  out.push_back(Subspace(uint64_t{1}));      // first singleton
  out.push_back(Subspace(uint64_t{1} << (d - 1)));  // last singleton
  out.push_back(Subspace::Full(d));
  for (int i = 0; i < num_random; ++i) {
    out.push_back(Subspace(1 + static_cast<uint64_t>(rng->UniformInt(
                               0, (int64_t{1} << d) - 2))));
  }
  return out;
}

struct DiffParam {
  size_t n;
  int d;
  MetricKind metric;
  data::NormalizationKind normalization;
};

class KernelDifferentialTest : public ::testing::TestWithParam<DiffParam> {};

data::Dataset MakeData(const DiffParam& param, Rng* rng) {
  // Mix scales per dimension so normalization actually changes the data.
  data::Dataset ds = data::GenerateUniform(param.n, param.d, rng);
  for (data::PointId i = 0; i < ds.size(); ++i) {
    for (int dim = 0; dim < param.d; ++dim) {
      ds.Set(i, dim, ds.At(i, dim) * (1.0 + 10.0 * dim) - 3.0 * dim);
    }
  }
  data::Normalizer::Fit(ds, param.normalization).Apply(&ds);
  return ds;
}

TEST_P(KernelDifferentialTest, BatchedDistancesMatchScalarMetric) {
  const DiffParam param = GetParam();
  Rng rng(param.n * 131 + param.d);
  data::Dataset ds = MakeData(param, &rng);
  DatasetView view = DatasetView::Build(ds);

  std::vector<data::PointId> all_ids(ds.size());
  for (size_t i = 0; i < all_ids.size(); ++i) {
    all_ids[i] = static_cast<data::PointId>(i);
  }

  for (const Subspace& s : TestSubspaces(param.d, &rng, 4)) {
    std::vector<double> q(param.d);
    for (auto& v : q) v = rng.Uniform(-1.0, 2.0);

    // Contiguous and gathered forms, no bound: every distance exact.
    std::vector<double> range_dist(ds.size());
    std::vector<double> gather_dist(ds.size());
    BatchedSubspaceDistanceRange(view, q, s, param.metric, 0, ds.size(),
                                 kPrunedDistance, range_dist);
    BatchedSubspaceDistance(view, q, s, param.metric, all_ids,
                            kPrunedDistance, gather_dist);
    for (data::PointId id = 0; id < ds.size(); ++id) {
      const double want =
          knn::SubspaceDistance(q, ds.Row(id), s, param.metric);
      EXPECT_NEAR(range_dist[id], want, 1e-9) << s.ToString();
      // The kernel accumulates in the scalar path's dimension order, so the
      // match is in fact bitwise, not just within tolerance.
      EXPECT_EQ(range_dist[id], want) << s.ToString();
      EXPECT_EQ(gather_dist[id], want) << s.ToString();
    }

    // Bounded form: pruned candidates must be provably beyond the bound,
    // survivors exact.
    const double bound = range_dist[ds.size() / 2];
    std::vector<double> bounded(ds.size());
    BatchedSubspaceDistanceRange(view, q, s, param.metric, 0, ds.size(),
                                 bound, bounded);
    for (data::PointId id = 0; id < ds.size(); ++id) {
      if (bounded[id] == kPrunedDistance) {
        EXPECT_GT(range_dist[id], bound) << s.ToString();
      } else {
        EXPECT_EQ(bounded[id], range_dist[id]) << s.ToString();
      }
    }
  }
}

TEST_P(KernelDifferentialTest, AllBackendsMatchScalarReference) {
  const DiffParam param = GetParam();
  Rng rng(param.n * 733 + param.d);
  data::Dataset ds = MakeData(param, &rng);

  knn::LinearScanKnn linear(ds, param.metric);
  auto bulk_tree = index::XTree::BulkLoad(ds, param.metric);
  auto grown_tree = index::XTree::BuildByInsertion(ds, param.metric);
  auto va = index::VaFile::Build(ds, param.metric);
  Rng build_rng(7);
  auto idist = index::IDistance::Build(ds, param.metric, {}, &build_rng);
  ASSERT_TRUE(bulk_tree.ok() && grown_tree.ok() && va.ok() && idist.ok());

  const Subspace full = Subspace::Full(param.d);
  for (int trial = 0; trial < 12; ++trial) {
    KnnQuery query;
    std::vector<double> q(param.d);
    data::PointId row = 0;
    const bool from_dataset = trial % 2 == 0;
    if (from_dataset) {
      row = static_cast<data::PointId>(
          rng.UniformInt(0, static_cast<int64_t>(ds.size()) - 1));
      q = ds.RowCopy(row);
      query.exclude = row;
    } else {
      for (auto& v : q) v = rng.Uniform(-0.5, 1.5);
    }
    query.point = q;
    query.subspace = trial < 3
                         ? full
                         : Subspace(1 + static_cast<uint64_t>(rng.UniformInt(
                                        0, (int64_t{1} << param.d) - 2)));
    query.k = trial == 0 ? static_cast<int>(ds.size()) + 3  // k >= n
                         : 1 + static_cast<int>(rng.UniformInt(0, 9));

    const auto want = ScalarKnn(ds, query, param.metric);
    ExpectSameNeighbors(linear.Search(query), want, "linear_scan");
    ExpectSameNeighbors(bulk_tree->Knn(query), want, "xtree_bulk");
    ExpectSameNeighbors(grown_tree->Knn(query), want, "xtree_insertion");
    ExpectSameNeighbors(va->Knn(query), want, "va_file");
    if (query.subspace == full) {
      ExpectSameNeighbors(idist->Knn(q, query.k, query.exclude), want,
                          "idistance");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelDifferentialTest,
    ::testing::Values(
        // n around and below the kernel block width, n >> block, small and
        // larger d, all metrics, all normalizations.
        DiffParam{40, 6, MetricKind::kL2, data::NormalizationKind::kMinMax},
        DiffParam{63, 3, MetricKind::kL1, data::NormalizationKind::kNone},
        DiffParam{64, 1, MetricKind::kL2, data::NormalizationKind::kZScore},
        DiffParam{300, 8, MetricKind::kL2, data::NormalizationKind::kMinMax},
        DiffParam{300, 8, MetricKind::kLInf,
                  data::NormalizationKind::kZScore},
        DiffParam{450, 12, MetricKind::kL1,
                  data::NormalizationKind::kMinMax},
        DiffParam{450, 20, MetricKind::kL2, data::NormalizationKind::kNone}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_d" +
             std::to_string(info.param.d) + "_" +
             std::string(knn::MetricKindToString(info.param.metric)) + "_" +
             (info.param.normalization == data::NormalizationKind::kNone
                  ? "raw"
                  : info.param.normalization ==
                            data::NormalizationKind::kMinMax
                        ? "minmax"
                        : "zscore");
    });

TEST(KernelDifferentialEdgeTest, SinglePointDatasetWithItselfExcluded) {
  // Regression: a 1-point dataset queried with its only row excluded must
  // yield an empty neighbour set on every backend (the VA-file used to
  // dereference an empty bound heap here).
  data::Dataset ds(3);
  ds.Append(std::vector<double>{0.1, 0.2, 0.3});
  const std::vector<double> q = ds.RowCopy(0);
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(3);
  query.k = 5;
  query.exclude = data::PointId{0};

  knn::LinearScanKnn linear(ds, MetricKind::kL2);
  EXPECT_TRUE(linear.Search(query).empty());
  auto tree = index::XTree::BulkLoad(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->Knn(query).empty());
  auto va = index::VaFile::Build(ds, MetricKind::kL2);
  ASSERT_TRUE(va.ok());
  EXPECT_TRUE(va->Knn(query).empty());
  Rng rng(3);
  auto idist = index::IDistance::Build(ds, MetricKind::kL2, {}, &rng);
  ASSERT_TRUE(idist.ok());
  EXPECT_TRUE(idist->Knn(q, query.k, query.exclude).empty());
}

TEST(KernelDifferentialConcurrencyTest, ConcurrentSearchesMatchReference) {
  // The kernel is called concurrently via QueryService; replay that shape
  // directly so the TSan job can see into the batched paths of both the
  // linear scan and the X-tree.
  Rng rng(2024);
  data::Dataset ds = data::GenerateUniform(500, 7, &rng);
  knn::LinearScanKnn linear(ds, MetricKind::kL2);
  auto tree = index::XTree::BulkLoad(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());

  struct Case {
    std::vector<double> q;
    KnnQuery query;
    std::vector<Neighbor> want;
  };
  std::vector<Case> cases(24);
  for (auto& c : cases) {
    c.q.resize(7);
    for (auto& v : c.q) v = rng.Uniform(-0.2, 1.2);
    c.query.point = c.q;
    c.query.subspace =
        Subspace(1 + static_cast<uint64_t>(rng.UniformInt(0, 126)));
    c.query.k = 1 + static_cast<int>(rng.UniformInt(0, 7));
    c.want = ScalarKnn(ds, c.query, MetricKind::kL2);
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < cases.size(); i += 4) {
        for (int rep = 0; rep < 5; ++rep) {
          ExpectSameNeighbors(linear.Search(cases[i].query), cases[i].want,
                              "concurrent linear");
          ExpectSameNeighbors(tree->Knn(cases[i].query), cases[i].want,
                              "concurrent xtree");
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace
}  // namespace hos::kernels
