#include "src/lattice/saving_factors.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/common/combinatorics.h"
#include "src/common/rng.h"
#include "src/lattice/lattice_store.h"

namespace hos::lattice {
namespace {

TEST(PruningPriorsTest, FlatMatchesPaperSection32) {
  auto priors = PruningPriors::Flat(5);
  EXPECT_EQ(priors.num_dims(), 5);
  // Boundary level 1: p_up = 1, p_down = 0.
  EXPECT_DOUBLE_EQ(priors.up[1], 1.0);
  EXPECT_DOUBLE_EQ(priors.down[1], 0.0);
  // Boundary level d: p_up = 0, p_down = 1.
  EXPECT_DOUBLE_EQ(priors.up[5], 0.0);
  EXPECT_DOUBLE_EQ(priors.down[5], 1.0);
  // Interior levels: 0.5 each.
  for (int m = 2; m <= 4; ++m) {
    EXPECT_DOUBLE_EQ(priors.up[m], 0.5);
    EXPECT_DOUBLE_EQ(priors.down[m], 0.5);
  }
}

// The TSF inputs come entirely from the lattice store's per-level tallies,
// so every test below runs against both storage backends.
class SavingFactorsTest : public ::testing::TestWithParam<LatticeBackend> {
 protected:
  static std::unique_ptr<LatticeStore> Make(int d) {
    return MakeLatticeStore(d, GetParam()).value();
  }
};

TEST_P(SavingFactorsTest, FreshLatticeUsesFullFractions) {
  // On a fresh lattice f_down = f_up = 1, so Definition 3 reduces to
  // p_down*DSF + p_up*USF with the boundary cases at m = 1 and m = d.
  const int d = 4;
  auto state = Make(d);
  auto priors = PruningPriors::Flat(d);

  // m = 1: only the upward term, p_up(1) = 1.
  EXPECT_DOUBLE_EQ(TotalSavingFactor(1, priors, *state),
                   1.0 * static_cast<double>(UpwardSavingFactor(1, d)));
  // m = d: only the downward term, p_down(d) = 1.
  EXPECT_DOUBLE_EQ(TotalSavingFactor(d, priors, *state),
                   1.0 * static_cast<double>(DownwardSavingFactor(d)));
  // Interior m: both terms at probability 0.5.
  for (int m = 2; m < d; ++m) {
    double expected = 0.5 * static_cast<double>(DownwardSavingFactor(m)) +
                      0.5 * static_cast<double>(UpwardSavingFactor(m, d));
    EXPECT_DOUBLE_EQ(TotalSavingFactor(m, priors, *state), expected);
  }
}

TEST_P(SavingFactorsTest, DecidedLevelScoresZero) {
  const int d = 3;
  auto state = Make(d);
  for (uint64_t mask : MasksOfLevel(d, 2)) {
    state->MarkEvaluated(Subspace(mask), false);
  }
  auto priors = PruningPriors::Flat(d);
  EXPECT_DOUBLE_EQ(TotalSavingFactor(2, priors, *state), 0.0);
}

TEST_P(SavingFactorsTest, FractionsShrinkAsLatticeResolves) {
  const int d = 4;
  auto state = Make(d);
  auto priors = PruningPriors::Flat(d);
  double before = TotalSavingFactor(2, priors, *state);
  // Decide all of level 1 as non-outliers: C_down_left(2) drops to 0.
  for (uint64_t mask : MasksOfLevel(d, 1)) {
    state->MarkEvaluated(Subspace(mask), false);
  }
  state->Propagate();
  double after = TotalSavingFactor(2, priors, *state);
  EXPECT_LT(after, before);
  // Now the downward term of level 2 is zero; only the upward term remains.
  EXPECT_DOUBLE_EQ(after,
                   0.5 * static_cast<double>(UpwardSavingFactor(2, d)));
}

TEST_P(SavingFactorsTest, FreshLatticePrefersExpectedLevel) {
  // With flat priors the best level maximises the Definition-3 mix; verify
  // BestLevel agrees with a direct argmax.
  for (int d = 2; d <= 10; ++d) {
    auto state = Make(d);
    auto priors = PruningPriors::Flat(d);
    int best = BestLevel(priors, *state);
    ASSERT_GE(best, 1);
    double best_tsf = TotalSavingFactor(best, priors, *state);
    for (int m = 1; m <= d; ++m) {
      EXPECT_LE(TotalSavingFactor(m, priors, *state), best_tsf);
    }
  }
}

TEST_P(SavingFactorsTest, SkipsDecidedLevels) {
  const int d = 3;
  auto state = Make(d);
  auto priors = PruningPriors::Flat(d);
  int first = BestLevel(priors, *state);
  for (uint64_t mask : MasksOfLevel(d, first)) {
    state->MarkEvaluated(Subspace(mask), false);
  }
  state->Propagate();
  int second = BestLevel(priors, *state);
  EXPECT_NE(second, first);
}

TEST_P(SavingFactorsTest, ReturnsZeroWhenAllDecided) {
  const int d = 2;
  auto state = Make(d);
  auto priors = PruningPriors::Flat(d);
  state->MarkEvaluated(Subspace::FromOneBased({1}), false);
  state->MarkEvaluated(Subspace::FromOneBased({2}), false);
  state->MarkEvaluated(Subspace::FromOneBased({1, 2}), false);
  EXPECT_EQ(BestLevel(priors, *state), 0);
}

TEST_P(SavingFactorsTest, BookkeepingStaysConsistentAfterBatchMerges) {
  // The TSF inputs (per-level undecided counts, the f_down/f_up remaining
  // workloads) are maintained incrementally by MarkEvaluated[Batch] and
  // Propagate. Replay random batch merges and verify every increment
  // against a brute-force recount from the raw per-mask states.
  const int d = 7;
  const uint64_t size = uint64_t{1} << d;
  auto priors = PruningPriors::Flat(d);
  for (uint64_t trial_seed : {31u, 32u, 33u}) {
    Rng rng(trial_seed);
    auto state = Make(d);
    std::vector<uint64_t> order;
    for (uint64_t mask = 1; mask < size; ++mask) order.push_back(mask);
    rng.Shuffle(&order);

    size_t cursor = 0;
    while (cursor < order.size()) {
      std::vector<uint64_t> batch;
      std::vector<double> values;
      const size_t batch_target = static_cast<size_t>(rng.UniformInt(1, 12));
      while (cursor < order.size() && batch.size() < batch_target) {
        const uint64_t mask = order[cursor++];
        if (IsDecided(state->StateOf(Subspace(mask)))) continue;
        batch.push_back(mask);
        // Monotone verdict: outlier iff the mask contains dimension 0.
        values.push_back((mask & 1) != 0 ? 1.0 : 0.0);
      }
      if (batch.empty()) continue;
      state->MarkEvaluatedBatch(batch, values, /*threshold=*/0.5);
      state->Propagate();

      // Brute-force recount of the TSF inputs from the per-mask states.
      std::vector<uint64_t> undecided(d + 1, 0);
      for (uint64_t mask = 1; mask < size; ++mask) {
        if (!IsDecided(state->StateOf(Subspace(mask)))) {
          ++undecided[Subspace(mask).Dimensionality()];
        }
      }
      for (int m = 1; m <= d; ++m) {
        ASSERT_EQ(state->UndecidedCount(m), undecided[m]) << "m=" << m;
        uint64_t below = 0, above = 0;
        for (int i = 1; i < m; ++i) below += undecided[i] * i;
        for (int i = m + 1; i <= d; ++i) above += undecided[i] * i;
        ASSERT_EQ(state->RemainingWorkloadBelow(m), below) << "m=" << m;
        ASSERT_EQ(state->RemainingWorkloadAbove(m), above) << "m=" << m;
        if (undecided[m] == 0) {
          ASSERT_EQ(TotalSavingFactor(m, priors, *state), 0.0);
        }
      }
      const int best = BestLevel(priors, *state);
      if (best != 0) {
        ASSERT_GT(state->UndecidedCount(best), 0u);
        for (int m = 1; m <= d; ++m) {
          ASSERT_LE(TotalSavingFactor(m, priors, *state),
                    TotalSavingFactor(best, priors, *state));
        }
      } else {
        ASSERT_TRUE(state->AllDecided());
      }
    }
    ASSERT_TRUE(state->AllDecided());
  }
}

TEST_P(SavingFactorsTest, LearnedPriorsSteerTheChoice) {
  // Push all upward probability to level 2: it should win on a fresh
  // 5-d lattice against interior levels with zero priors.
  const int d = 5;
  auto state = Make(d);
  PruningPriors priors;
  priors.up.assign(d + 1, 0.0);
  priors.down.assign(d + 1, 0.0);
  priors.up[2] = 1.0;
  EXPECT_EQ(BestLevel(priors, *state), 2);
}

INSTANTIATE_TEST_SUITE_P(Backends, SavingFactorsTest,
                         ::testing::Values(LatticeBackend::kDense,
                                           LatticeBackend::kSparse),
                         [](const auto& info) {
                           return info.param == LatticeBackend::kDense
                                      ? "dense"
                                      : "sparse";
                         });

}  // namespace
}  // namespace hos::lattice
