// Fuzz suite for the lattice pruning invariants (paper Properties 1-2)
// under the batch-marking path the parallel frontier merge uses, run
// against both storage backends:
//
//   Property 1 (downward): a subset of a non-outlying subspace is
//   non-outlying — so the lattice must never hold a subset of a decided
//   non-outlier as outlier.
//   Property 2 (upward): a superset of an outlying subspace is outlying —
//   so the lattice must never hold a superset of a decided outlier as
//   non-outlier.
//
// Random monotone ground truths are fed in random evaluation orders and
// random batch partitions; verdicts for each batch are computed
// concurrently on a ThreadPool into pre-assigned slots and merged in batch
// order through MarkEvaluatedBatch — exactly the parallel search's
// pipeline. After every propagation, every decided subspace must agree
// with the ground truth, and every *inferred* state must be justified by
// an *evaluated* seed in the right direction. A final counter-closure
// check pins evaluated + inferred == 2^d - 1.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/combinatorics.h"
#include "src/common/rng.h"
#include "src/lattice/lattice_store.h"
#include "src/service/thread_pool.h"

namespace hos::lattice {
namespace {

/// Random monotone (up-closed) outlier predicate over d dims: everything
/// containing one of `num_seeds` random seeds is an outlier.
std::vector<bool> RandomUpClosedTruth(int d, int num_seeds, Rng* rng) {
  const uint64_t size = uint64_t{1} << d;
  std::vector<uint64_t> seeds;
  for (int i = 0; i < num_seeds; ++i) {
    seeds.push_back(
        static_cast<uint64_t>(rng->UniformInt(1, static_cast<int64_t>(size - 1))));
  }
  std::vector<bool> outlier(size, false);
  for (uint64_t mask = 1; mask < size; ++mask) {
    for (uint64_t seed : seeds) {
      if ((mask & seed) == seed) {
        outlier[mask] = true;
        break;
      }
    }
  }
  return outlier;
}

/// Checks that every decided subspace agrees with the monotone truth (which
/// subsumes Properties 1-2: a monotone assignment cannot contain an
/// outlier below a non-outlier), and that inferred states are justified by
/// evaluated seeds: an inferred outlier must contain an evaluated outlier,
/// an inferred non-outlier must be contained in an evaluated non-outlier.
void CheckInvariants(const LatticeStore& state, const std::vector<bool>& truth,
                     int d) {
  const uint64_t size = uint64_t{1} << d;
  std::vector<uint64_t> evaluated_outliers;
  std::vector<uint64_t> evaluated_non_outliers;
  for (uint64_t mask = 1; mask < size; ++mask) {
    const SubspaceState s = state.StateOf(Subspace(mask));
    if (s == SubspaceState::kEvaluatedOutlier) evaluated_outliers.push_back(mask);
    if (s == SubspaceState::kEvaluatedNonOutlier) {
      evaluated_non_outliers.push_back(mask);
    }
  }
  for (uint64_t mask = 1; mask < size; ++mask) {
    const Subspace s(mask);
    const SubspaceState st = state.StateOf(s);
    if (!IsDecided(st)) continue;
    ASSERT_EQ(state.IsOutlying(s), truth[mask]) << "mask " << mask;
    if (st == SubspaceState::kInferredOutlier) {
      bool justified = false;
      for (uint64_t seed : evaluated_outliers) {
        if ((mask & seed) == seed && mask != seed) justified = true;
      }
      ASSERT_TRUE(justified)
          << "inferred outlier " << mask << " has no evaluated outlier subset";
    }
    if (st == SubspaceState::kInferredNonOutlier) {
      bool justified = false;
      for (uint64_t seed : evaluated_non_outliers) {
        if ((mask & seed) == mask && mask != seed) justified = true;
      }
      ASSERT_TRUE(justified) << "inferred non-outlier " << mask
                             << " has no evaluated non-outlier superset";
    }
  }
  // The seed sets must be antichains (minimal outliers / maximal
  // non-outliers): a dominated seed would sneak duplicate pruning work.
  const auto& mins = state.minimal_outlier_seeds();
  for (size_t i = 0; i < mins.size(); ++i) {
    for (size_t j = 0; j < mins.size(); ++j) {
      if (i != j) ASSERT_FALSE(mins[i].IsSubsetOf(mins[j]));
    }
  }
  const auto& maxs = state.maximal_non_outlier_seeds();
  for (size_t i = 0; i < maxs.size(); ++i) {
    for (size_t j = 0; j < maxs.size(); ++j) {
      if (i != j) ASSERT_FALSE(maxs[i].IsSubsetOf(maxs[j]));
    }
  }
}

/// Drives one full random-order, random-batch fill of a d-dim lattice,
/// computing each batch's verdicts concurrently on `pool` (slot-per-mask,
/// merged in batch order) when non-null.
void RunRandomBatchTrial(int d, LatticeBackend backend,
                         const std::vector<bool>& truth, Rng* rng,
                         service::ThreadPool* pool, bool check_each_step) {
  const uint64_t size = uint64_t{1} << d;
  std::unique_ptr<LatticeStore> state = MakeLatticeStore(d, backend).value();

  std::vector<uint64_t> order;
  for (uint64_t mask = 1; mask < size; ++mask) order.push_back(mask);
  rng->Shuffle(&order);

  size_t cursor = 0;
  while (cursor < order.size()) {
    // Random batch of still-undecided masks; masks decided meanwhile must
    // already agree with the truth.
    const size_t batch_target = static_cast<size_t>(rng->UniformInt(1, 9));
    std::vector<uint64_t> batch;
    while (cursor < order.size() && batch.size() < batch_target) {
      const uint64_t mask = order[cursor++];
      if (IsDecided(state->StateOf(Subspace(mask)))) {
        ASSERT_EQ(state->IsOutlying(Subspace(mask)), truth[mask]);
        continue;
      }
      batch.push_back(mask);
    }
    if (batch.empty()) continue;

    // "OD values" for the batch against threshold 0.5: computed
    // concurrently into pre-assigned slots, as the frontier merge does.
    std::vector<double> values(batch.size(), 0.0);
    if (pool != nullptr) {
      std::vector<std::future<void>> done;
      for (size_t i = 0; i < batch.size(); ++i) {
        done.push_back(pool->SubmitWithResult([&values, &truth, &batch, i]() {
          values[i] = truth[batch[i]] ? 1.0 : 0.0;
        }));
      }
      for (auto& f : done) f.wait();
    } else {
      for (size_t i = 0; i < batch.size(); ++i) {
        values[i] = truth[batch[i]] ? 1.0 : 0.0;
      }
    }
    state->MarkEvaluatedBatch(batch, values, /*threshold=*/0.5);
    state->Propagate();
    if (check_each_step) CheckInvariants(*state, truth, d);
  }
  state->Propagate();
  ASSERT_TRUE(state->AllDecided());
  CheckInvariants(*state, truth, d);

  // Counter closure: every subspace is exactly one of evaluated/inferred.
  uint64_t decided = 0;
  for (int m = 1; m <= d; ++m) {
    decided += state->EvaluatedOutliers(m) + state->EvaluatedNonOutliers(m) +
               state->InferredOutliers(m) + state->InferredNonOutliers(m);
    ASSERT_EQ(state->UndecidedCount(m), 0u);
  }
  ASSERT_EQ(decided, size - 1);
}

class LatticeInvariantFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, LatticeBackend>> {};

TEST_P(LatticeInvariantFuzzTest, RandomBatchMarkingPreservesProperties12) {
  const int d = 6;
  const auto [num_seeds, backend] = GetParam();
  Rng rng(7000 + num_seeds);
  for (int trial = 0; trial < 12; ++trial) {
    auto truth = RandomUpClosedTruth(d, num_seeds, &rng);
    RunRandomBatchTrial(d, backend, truth, &rng, /*pool=*/nullptr,
                        /*check_each_step=*/true);
  }
}

TEST_P(LatticeInvariantFuzzTest, ConcurrentBatchVerdictsPreserveProperties12) {
  const int d = 6;
  const auto [num_seeds, backend] = GetParam();
  Rng rng(9000 + num_seeds);
  service::ThreadPool pool(4);
  for (int trial = 0; trial < 8; ++trial) {
    auto truth = RandomUpClosedTruth(d, num_seeds, &rng);
    RunRandomBatchTrial(d, backend, truth, &rng, &pool,
                        /*check_each_step=*/true);
  }
}

// Many lattices filled concurrently, each via pool-computed batch verdicts
// on its own state: catches any hidden shared/static state in the lattice
// bookkeeping under TSan (the parallel search runs exactly this shape —
// per-query lattices, shared verdict pool). Drivers alternate backends so
// dense and sparse stores interleave on the same pool.
TEST(LatticeInvariantFuzzTest, IndependentLatticesUnderConcurrentMarking) {
  const int d = 6;
  service::ThreadPool verdict_pool(4);
  std::vector<std::thread> drivers;
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([t, &verdict_pool]() {
      const LatticeBackend backend =
          t % 2 == 0 ? LatticeBackend::kDense : LatticeBackend::kSparse;
      Rng rng(11000 + static_cast<uint64_t>(t));
      for (int trial = 0; trial < 4; ++trial) {
        auto truth = RandomUpClosedTruth(d, 2 + t, &rng);
        RunRandomBatchTrial(d, backend, truth, &rng, &verdict_pool,
                            /*check_each_step=*/false);
      }
    });
  }
  for (auto& th : drivers) th.join();
}

INSTANTIATE_TEST_SUITE_P(
    SeedCounts, LatticeInvariantFuzzTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 4, 8),
                       ::testing::Values(LatticeBackend::kDense,
                                         LatticeBackend::kSparse)),
    [](const auto& info) {
      return "seeds" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == LatticeBackend::kDense ? "_dense"
                                                                : "_sparse");
    });

}  // namespace
}  // namespace hos::lattice
