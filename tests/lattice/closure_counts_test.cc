// The sparse backend's closed-form closure counting, checked exhaustively
// against brute-force enumeration: for random seed families over small d,
// AvoidingSubsetCounts / Up- / DownClosureLevelCounts must equal a direct
// sweep over all 2^d masks — including degenerate families (empty, single
// seed, dominated seeds, the full space, all singletons).

#include "src/lattice/closure_counts.h"

#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "src/common/combinatorics.h"
#include "src/common/rng.h"

namespace hos::lattice {
namespace {

struct BruteCounts {
  std::vector<uint64_t> avoid, up, down;
};

BruteCounts Brute(const std::vector<uint64_t>& seeds, int d) {
  BruteCounts out;
  out.avoid.assign(d + 1, 0);
  out.up.assign(d + 1, 0);
  out.down.assign(d + 1, 0);
  for (uint64_t mask = 0; mask < (uint64_t{1} << d); ++mask) {
    const int m = std::popcount(mask);
    bool contains_seed = false, inside_seed = false;
    for (uint64_t s : seeds) {
      if ((mask & s) == s) contains_seed = true;
      if ((mask & s) == mask) inside_seed = true;
    }
    if (!contains_seed) ++out.avoid[m];
    if (!seeds.empty() && contains_seed) ++out.up[m];
    if (!seeds.empty() && inside_seed) ++out.down[m];
  }
  return out;
}

void CheckAgainstBrute(const std::vector<uint64_t>& seeds, int d) {
  const BruteCounts brute = Brute(seeds, d);
  EXPECT_EQ(AvoidingSubsetCounts(seeds, d), brute.avoid) << "d=" << d;
  EXPECT_EQ(UpClosureLevelCounts(seeds, d), brute.up) << "d=" << d;
  EXPECT_EQ(DownClosureLevelCounts(seeds, d), brute.down) << "d=" << d;
}

TEST(ClosureCountsTest, EmptyFamily) {
  const int d = 6;
  EXPECT_EQ(UpClosureLevelCounts({}, d), std::vector<uint64_t>(d + 1, 0));
  EXPECT_EQ(DownClosureLevelCounts({}, d), std::vector<uint64_t>(d + 1, 0));
  // No seeds to avoid: every subset qualifies.
  const auto avoid = AvoidingSubsetCounts({}, d);
  for (int m = 0; m <= d; ++m) EXPECT_EQ(avoid[m], Binomial(d, m));
}

TEST(ClosureCountsTest, DegenerateFamilies) {
  CheckAgainstBrute({0b1}, 5);                  // one singleton
  CheckAgainstBrute({0b11111}, 5);              // the full space
  CheckAgainstBrute({0b1, 0b10, 0b100}, 5);     // several singletons
  CheckAgainstBrute({0b11, 0b111}, 5);          // dominated seed
  CheckAgainstBrute({0b11, 0b11}, 5);           // duplicate seed
  CheckAgainstBrute({0b101, 0b1010, 0b10100}, 6);
}

TEST(ClosureCountsTest, AllSingletons) {
  // With every dimension a seed, the up-closure is the whole lattice and
  // only the empty mask avoids everything.
  const int d = 10;
  std::vector<uint64_t> seeds;
  for (int i = 0; i < d; ++i) seeds.push_back(uint64_t{1} << i);
  const auto avoid = AvoidingSubsetCounts(seeds, d);
  EXPECT_EQ(avoid[0], 1u);
  for (int m = 1; m <= d; ++m) EXPECT_EQ(avoid[m], 0u);
  const auto up = UpClosureLevelCounts(seeds, d);
  for (int m = 1; m <= d; ++m) EXPECT_EQ(up[m], Binomial(d, m));
}

TEST(ClosureCountsTest, RandomFamiliesMatchBruteForce) {
  Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const int d = static_cast<int>(rng.UniformInt(1, 12));
    const int n = static_cast<int>(rng.UniformInt(0, 8));
    std::vector<uint64_t> seeds;
    for (int i = 0; i < n; ++i) {
      seeds.push_back(static_cast<uint64_t>(
          rng.UniformInt(1, (int64_t{1} << d) - 1)));
    }
    CheckAgainstBrute(seeds, d);
  }
}

TEST(ClosureCountsTest, HighDimensionalClosedForm) {
  // Counts no enumeration could reach: d = 40, one pair seed. Supersets of
  // a fixed pair at level m are C(38, m-2).
  const int d = 40;
  const auto up = UpClosureLevelCounts({0b11}, d);
  for (int m = 2; m <= d; ++m) {
    EXPECT_EQ(up[m], Binomial(d - 2, m - 2)) << m;
  }
  // Down-closure of a 38-dim seed: C(38, m) subsets at level m.
  const uint64_t wide = ((uint64_t{1} << d) - 1) & ~uint64_t{0b11};
  const auto down = DownClosureLevelCounts({wide}, d);
  for (int m = 0; m <= d; ++m) {
    EXPECT_EQ(down[m], Binomial(d - 2, m)) << m;
  }
}

}  // namespace
}  // namespace hos::lattice
