// Tests for the memoised closure counter: the branch-and-prune recursion
// behind AvoidingSubsetCounts caches canonical (pruned seed set, remaining
// dimensions) subproblems, so pathological interlocking antichains — the
// seed shapes a frontier-band sparse search can produce — cost the number
// of distinct subproblems instead of the number of branch paths. The memo
// must be invisible: counts stay exactly the brute-force truth on every
// family a 2^d sweep can check, and known closed forms pin the pathological
// families brute force cannot reach (d = 40..58).

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/combinatorics.h"
#include "src/common/rng.h"
#include "src/lattice/closure_counts.h"

namespace hos::lattice {
namespace {

/// 2^d truth: j-subsets of [d] containing no seed.
std::vector<uint64_t> BruteForceAvoiding(const std::vector<uint64_t>& seeds,
                                         int d) {
  std::vector<uint64_t> counts(d + 1, 0);
  const uint64_t top = (uint64_t{1} << d) - 1;
  for (uint64_t mask = 0; mask <= top; ++mask) {
    bool avoids = true;
    for (uint64_t seed : seeds) {
      if ((mask & seed) == seed) {
        avoids = false;
        break;
      }
    }
    if (avoids) ++counts[static_cast<size_t>(std::popcount(mask))];
  }
  return counts;
}

TEST(ClosureMemoTest, RandomFamiliesMatchBruteForce) {
  Rng rng(31337);
  for (int trial = 0; trial < 60; ++trial) {
    const int d = 4 + static_cast<int>(rng.UniformInt(0, 10));  // 4..14
    const int num_seeds = 1 + static_cast<int>(rng.UniformInt(0, 19));
    std::vector<uint64_t> seeds;
    for (int s = 0; s < num_seeds; ++s) {
      // Small seeds (1..4 bits) interlock the most — the memo's case.
      uint64_t seed = 0;
      const int bits = 1 + static_cast<int>(rng.UniformInt(0, 3));
      for (int b = 0; b < bits; ++b) {
        seed |= uint64_t{1} << rng.UniformInt(0, d - 1);
      }
      seeds.push_back(seed);
    }
    SCOPED_TRACE("trial=" + std::to_string(trial) + " d=" + std::to_string(d));
    EXPECT_EQ(AvoidingSubsetCounts(seeds, d), BruteForceAvoiding(seeds, d));
  }
}

TEST(ClosureMemoTest, DuplicateAndImpliedSeedsMatchBruteForce) {
  // Duplicates, supersets of other seeds, and a full-universe seed: all
  // pruned to the same canonical antichain, so the memo must not conflate
  // them with distinct families.
  const int d = 10;
  std::vector<uint64_t> seeds = {0b11, 0b11, 0b111, 0b1100, 0b1111111111,
                                 0b0011001100};
  EXPECT_EQ(AvoidingSubsetCounts(seeds, d), BruteForceAvoiding(seeds, d));
}

TEST(ClosureMemoTest, ZeroAndEmptySeedEdgeCases) {
  // The empty seed is contained in everything: all counts 0.
  EXPECT_EQ(AvoidingSubsetCounts({0}, 8), std::vector<uint64_t>(9, 0));
  EXPECT_EQ(AvoidingSubsetCounts({0b11, 0}, 8), std::vector<uint64_t>(9, 0));
  // No seeds at all: every subset avoids vacuously.
  const std::vector<uint64_t> none = AvoidingSubsetCounts({}, 6);
  for (int j = 0; j <= 6; ++j) {
    EXPECT_EQ(none[static_cast<size_t>(j)], Binomial(6, j));
  }
}

// Pathological family 1: the path antichain {i, i+1} for i = 0..d-2. An
// avoiding subset is an independent set of the path graph, and the number
// of j-vertex independent sets of a path on d vertices is C(d - j + 1, j).
// At d = 58 the branch tree has Fibonacci-many paths (~10^12 at this
// depth); only subproblem sharing finishes this in test time.
TEST(ClosureMemoTest, PathAntichainMatchesClosedFormAtFullWidth) {
  for (int d : {12, 40, 58}) {
    SCOPED_TRACE("d=" + std::to_string(d));
    std::vector<uint64_t> seeds;
    for (int i = 0; i + 1 < d; ++i) {
      seeds.push_back((uint64_t{1} << i) | (uint64_t{1} << (i + 1)));
    }
    const std::vector<uint64_t> counts = AvoidingSubsetCounts(seeds, d);
    for (int j = 0; j <= d; ++j) {
      const uint64_t expected =
          j <= (d + 1) / 2 ? Binomial(d - j + 1, j) : 0;
      EXPECT_EQ(counts[static_cast<size_t>(j)], expected) << "j=" << j;
    }
    if (d <= 14) {
      EXPECT_EQ(counts, BruteForceAvoiding(seeds, d));
    }
  }
}

// Pathological family 2: every pair {i, j} (the complete graph). Avoiding
// subsets are the independent sets of K_d: the empty set and the d
// singletons. C(d, 2) seeds at d = 58 is 1653 mutually interlocking
// constraints.
TEST(ClosureMemoTest, CompleteGraphAntichainMatchesClosedForm) {
  for (int d : {10, 34, 58}) {
    SCOPED_TRACE("d=" + std::to_string(d));
    std::vector<uint64_t> seeds;
    for (int i = 0; i < d; ++i) {
      for (int j = i + 1; j < d; ++j) {
        seeds.push_back((uint64_t{1} << i) | (uint64_t{1} << j));
      }
    }
    const std::vector<uint64_t> counts = AvoidingSubsetCounts(seeds, d);
    EXPECT_EQ(counts[0], 1u);
    EXPECT_EQ(counts[1], static_cast<uint64_t>(d));
    for (int j = 2; j <= d; ++j) {
      EXPECT_EQ(counts[static_cast<size_t>(j)], 0u) << "j=" << j;
    }
  }
}

// The closure entry points ride on the same recursion; cross-check both
// against their definitions on a brute-forceable width.
TEST(ClosureMemoTest, ClosureLevelCountsMatchBruteForce) {
  Rng rng(999);
  const int d = 12;
  std::vector<uint64_t> seeds;
  for (int s = 0; s < 8; ++s) {
    uint64_t seed = 0;
    for (int b = 0; b < 3; ++b) seed |= uint64_t{1} << rng.UniformInt(0, d - 1);
    seeds.push_back(seed);
  }

  std::vector<uint64_t> up_truth(d + 1, 0), down_truth(d + 1, 0);
  const uint64_t top = (uint64_t{1} << d) - 1;
  for (uint64_t mask = 0; mask <= top; ++mask) {
    const auto level = static_cast<size_t>(std::popcount(mask));
    for (uint64_t seed : seeds) {
      if ((mask & seed) == seed) {
        ++up_truth[level];
        break;
      }
    }
    for (uint64_t seed : seeds) {
      if ((mask & seed) == mask) {
        ++down_truth[level];
        break;
      }
    }
  }
  EXPECT_EQ(UpClosureLevelCounts(seeds, d), up_truth);
  EXPECT_EQ(DownClosureLevelCounts(seeds, d), down_truth);
}

}  // namespace
}  // namespace hos::lattice
