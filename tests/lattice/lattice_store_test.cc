// Property suite for the lattice store, run identically against both
// backends: every behavioural test below is parameterised over
// {dense, sparse}, so the hash-map backend is held to the exact observable
// contract of the flat-array one — states, seeds, per-level tallies,
// undecided enumeration order, and the workload counters feeding TSF.

#include "src/lattice/lattice_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/combinatorics.h"
#include "src/lattice/dense_lattice_store.h"
#include "src/lattice/sparse_lattice_store.h"

namespace hos::lattice {
namespace {

Subspace S(std::initializer_list<int> one_based) {
  return Subspace::FromOneBased(std::vector<int>(one_based));
}

class LatticeStoreTest : public ::testing::TestWithParam<LatticeBackend> {
 protected:
  static std::unique_ptr<LatticeStore> Make(int d) {
    auto store = MakeLatticeStore(d, GetParam());
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  }
};

TEST_P(LatticeStoreTest, FreshStateAllUndecided) {
  auto state = Make(4);
  EXPECT_EQ(state->num_dims(), 4);
  for (int m = 1; m <= 4; ++m) {
    EXPECT_EQ(state->UndecidedCount(m), Binomial(4, m));
  }
  EXPECT_FALSE(state->AllDecided());
  EXPECT_EQ(state->StateOf(S({1, 2})), SubspaceState::kUndecided);
}

TEST_P(LatticeStoreTest, MarkEvaluatedOutlier) {
  auto state = Make(4);
  state->MarkEvaluated(S({1, 3}), /*outlier=*/true);
  EXPECT_EQ(state->StateOf(S({1, 3})), SubspaceState::kEvaluatedOutlier);
  EXPECT_TRUE(state->IsOutlying(S({1, 3})));
  EXPECT_EQ(state->EvaluatedOutliers(2), 1u);
  EXPECT_EQ(state->UndecidedCount(2), Binomial(4, 2) - 1);
  ASSERT_EQ(state->minimal_outlier_seeds().size(), 1u);
}

TEST_P(LatticeStoreTest, UpwardPruningMarksSupersets) {
  auto state = Make(4);
  state->MarkEvaluated(S({1, 3}), true);
  state->Propagate();
  // Supersets of [1,3]: [1,2,3], [1,3,4], [1,2,3,4].
  EXPECT_EQ(state->StateOf(S({1, 2, 3})), SubspaceState::kInferredOutlier);
  EXPECT_EQ(state->StateOf(S({1, 3, 4})), SubspaceState::kInferredOutlier);
  EXPECT_EQ(state->StateOf(S({1, 2, 3, 4})),
            SubspaceState::kInferredOutlier);
  // Non-supersets untouched.
  EXPECT_EQ(state->StateOf(S({1, 2})), SubspaceState::kUndecided);
  EXPECT_EQ(state->StateOf(S({2, 3, 4})), SubspaceState::kUndecided);
  EXPECT_EQ(state->InferredOutliers(3), 2u);
  EXPECT_EQ(state->InferredOutliers(4), 1u);
}

TEST_P(LatticeStoreTest, DownwardPruningMarksSubsets) {
  auto state = Make(4);
  state->MarkEvaluated(S({1, 2, 3}), false);
  state->Propagate();
  EXPECT_EQ(state->StateOf(S({1, 2})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state->StateOf(S({1, 3})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state->StateOf(S({2, 3})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state->StateOf(S({1})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state->StateOf(S({2})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state->StateOf(S({3})), SubspaceState::kInferredNonOutlier);
  // [4] and everything containing 4 untouched.
  EXPECT_EQ(state->StateOf(S({4})), SubspaceState::kUndecided);
  EXPECT_EQ(state->StateOf(S({1, 4})), SubspaceState::kUndecided);
}

TEST_P(LatticeStoreTest, PendingSeedsApplyOnlyAtPropagate) {
  // Between MarkEvaluated and Propagate a covered mask must still read
  // undecided — both backends defer inference to the propagation barrier.
  auto state = Make(4);
  state->MarkEvaluated(S({1}), true);
  EXPECT_EQ(state->StateOf(S({1, 2})), SubspaceState::kUndecided);
  EXPECT_EQ(state->InferredOutliers(2), 0u);
  state->Propagate();
  EXPECT_EQ(state->StateOf(S({1, 2})), SubspaceState::kInferredOutlier);
}

TEST_P(LatticeStoreTest, PrioritisesOutlierOverNonOutlierResolution) {
  // A subspace can be superset of an outlier seed and subset of a
  // non-outlier seed only if the lattice is inconsistent; with consistent
  // OD monotonicity this cannot happen. Here we merely check both pending
  // lists apply in one Propagate call.
  auto state = Make(4);
  state->MarkEvaluated(S({1}), true);       // prunes supersets upward
  state->MarkEvaluated(S({2, 3}), false);   // prunes subsets downward
  state->Propagate();
  EXPECT_TRUE(state->IsOutlying(S({1, 4})));
  EXPECT_EQ(state->StateOf(S({2})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state->StateOf(S({3})), SubspaceState::kInferredNonOutlier);
}

TEST_P(LatticeStoreTest, MinimalSeedSetStaysMinimal) {
  auto state = Make(4);
  state->MarkEvaluated(S({1, 2, 3}), true);
  EXPECT_EQ(state->minimal_outlier_seeds().size(), 1u);
  // A subset seed replaces the superset.
  state->MarkEvaluated(S({1, 2}), true);
  ASSERT_EQ(state->minimal_outlier_seeds().size(), 1u);
  EXPECT_EQ(state->minimal_outlier_seeds()[0], S({1, 2}));
  // An incomparable seed is added.
  state->MarkEvaluated(S({3, 4}), true);
  EXPECT_EQ(state->minimal_outlier_seeds().size(), 2u);
  // A superset of an existing seed is not added.
  state->MarkEvaluated(S({1, 2, 4}), true);
  EXPECT_EQ(state->minimal_outlier_seeds().size(), 2u);
}

TEST_P(LatticeStoreTest, MaximalNonOutlierSeedsStayMaximal) {
  auto state = Make(4);
  state->MarkEvaluated(S({1, 2}), false);
  state->MarkEvaluated(S({1, 2, 3}), false);  // superset replaces subset
  ASSERT_EQ(state->maximal_non_outlier_seeds().size(), 1u);
  EXPECT_EQ(state->maximal_non_outlier_seeds()[0], S({1, 2, 3}));
  state->MarkEvaluated(S({1, 4}), false);  // incomparable
  EXPECT_EQ(state->maximal_non_outlier_seeds().size(), 2u);
}

TEST_P(LatticeStoreTest, UndecidedMasksFiltersDecidedMasks) {
  auto state = Make(3);
  state->MarkEvaluated(S({1}), true);
  state->Propagate();
  const auto level2 = state->UndecidedMasks(2);
  // [1,2] and [1,3] are inferred outliers; only [2,3] remains.
  ASSERT_EQ(level2.size(), 1u);
  EXPECT_EQ(level2[0], S({2, 3}).mask());
  EXPECT_EQ(state->UndecidedCount(2), 1u);
}

TEST_P(LatticeStoreTest, UndecidedMasksIsAStableSnapshot) {
  // Regression for the old LatticeState::Undecided() reference-invalidation
  // hazard: the returned vector is owned by the caller and must survive
  // arbitrary later mutation of the store.
  auto state = Make(4);
  const std::vector<uint64_t> before = state->UndecidedMasks(2);
  ASSERT_EQ(before.size(), Binomial(4, 2));
  const std::vector<uint64_t> copy = before;

  state->MarkEvaluated(S({1}), true);
  state->MarkEvaluated(S({2, 3}), false);
  state->Propagate();
  state->MarkEvaluated(S({2, 4}), false);

  EXPECT_EQ(before, copy);  // snapshot untouched by the mutations
  // A fresh snapshot reflects the new state and is strictly smaller.
  EXPECT_LT(state->UndecidedMasks(2).size(), before.size());
}

TEST_P(LatticeStoreTest, UndecidedEnumerationIsAscending) {
  auto state = Make(5);
  state->MarkEvaluated(S({2}), false);
  state->Propagate();
  for (int m = 1; m <= 5; ++m) {
    const auto masks = state->UndecidedMasks(m);
    EXPECT_EQ(masks.size(), state->UndecidedCount(m));
    for (size_t i = 1; i < masks.size(); ++i) {
      EXPECT_LT(masks[i - 1], masks[i]);
    }
  }
}

TEST_P(LatticeStoreTest, WorkloadCounters) {
  auto state = Make(4);
  // Initially: C_down_left(3) = C(4,1)*1 + C(4,2)*2 = 16,
  //            C_up_left(3)   = C(4,4)*4 = 4.
  EXPECT_EQ(state->RemainingWorkloadBelow(3), 16u);
  EXPECT_EQ(state->RemainingWorkloadAbove(3), 4u);
  state->MarkEvaluated(S({1}), true);
  state->Propagate();  // prunes upward: 3 of level 2, 3 of level 3, 1 of 4
  EXPECT_EQ(state->RemainingWorkloadBelow(3),
            3u * 1 + 3u * 2);  // 3 singles + 3 pairs left
  EXPECT_EQ(state->RemainingWorkloadAbove(3), 0u);
}

TEST_P(LatticeStoreTest, FullyDecidedLattice) {
  auto state = Make(3);
  state->MarkEvaluated(S({1}), true);
  state->MarkEvaluated(S({2}), false);
  state->MarkEvaluated(S({3}), false);
  state->Propagate();
  // Remaining undecided: [2,3].
  EXPECT_FALSE(state->AllDecided());
  state->MarkEvaluated(S({2, 3}), false);
  state->Propagate();
  EXPECT_TRUE(state->AllDecided());
  // Outliers at each level: level 1: [1]; level 2: [1,2],[1,3]; level 3: all.
  EXPECT_EQ(state->OutliersAtLevel(1), 1u);
  EXPECT_EQ(state->OutliersAtLevel(2), 2u);
  EXPECT_EQ(state->OutliersAtLevel(3), 1u);
}

TEST_P(LatticeStoreTest, CounterClosureOverFullLattice) {
  // evals + inferred == 2^d - 1 once everything is decided, level by level.
  for (int d = 2; d <= 8; ++d) {
    auto state = Make(d);
    for (int m = 1; m <= d; ++m) {
      // Monotone verdict: outlier iff the mask contains dimension 0.
      for (uint64_t mask : state->UndecidedMasks(m)) {
        state->MarkEvaluated(Subspace(mask), (mask & 1) != 0);
      }
      state->Propagate();
    }
    ASSERT_TRUE(state->AllDecided());
    uint64_t decided = 0;
    for (int m = 1; m <= d; ++m) {
      decided += state->EvaluatedOutliers(m) +
                 state->EvaluatedNonOutliers(m) + state->InferredOutliers(m) +
                 state->InferredNonOutliers(m);
      EXPECT_EQ(state->UndecidedCount(m), 0u);
    }
    EXPECT_EQ(decided, (uint64_t{1} << d) - 1) << "d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, LatticeStoreTest,
                         ::testing::Values(LatticeBackend::kDense,
                                           LatticeBackend::kSparse),
                         [](const auto& info) {
                           return info.param == LatticeBackend::kDense
                                      ? "dense"
                                      : "sparse";
                         });

TEST(MakeLatticeStoreTest, AutoSelectsByDimensionality) {
  EXPECT_EQ(MakeLatticeStore(4).value()->name(), "dense");
  EXPECT_EQ(MakeLatticeStore(kDenseMaxDims).value()->name(), "dense");
  EXPECT_EQ(MakeLatticeStore(kDenseMaxDims + 1).value()->name(), "sparse");
  EXPECT_EQ(MakeLatticeStore(32).value()->name(), "sparse");
}

TEST(MakeLatticeStoreTest, ForcedBackendsRespected) {
  EXPECT_EQ(MakeLatticeStore(6, LatticeBackend::kSparse).value()->name(),
            "sparse");
  EXPECT_EQ(MakeLatticeStore(6, LatticeBackend::kDense).value()->name(),
            "dense");
}

TEST(MakeLatticeStoreTest, RejectsOutOfRangeDims) {
  for (int d : {0, -3, kMaxLatticeDims + 1}) {
    auto store = MakeLatticeStore(d);
    ASSERT_FALSE(store.ok()) << "d=" << d;
    EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
    // The message names the supported range.
    EXPECT_NE(store.status().ToString().find(
                  "1.." + std::to_string(kMaxLatticeDims)),
              std::string::npos);
  }
}

TEST(MakeLatticeStoreTest, DenseBackendRejectsPastItsCap) {
  auto store = MakeLatticeStore(kDenseMaxDims + 1, LatticeBackend::kDense);
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(store.status().ToString().find(
                "1.." + std::to_string(kDenseMaxDims)),
            std::string::npos);
}

TEST(SparseLatticeStoreTest, HighDimensionalLatticeIsCheap) {
  // d = 32: the dense backend would need a 2^32-byte state array; the
  // sparse one allocates only what is touched. All 32 singletons outlying
  // decides the whole lattice in one propagation.
  auto made = MakeLatticeStore(32);
  ASSERT_TRUE(made.ok());
  auto& state = *made.value();
  EXPECT_EQ(state.name(), "sparse");
  EXPECT_EQ(state.UndecidedCount(16), Binomial(32, 16));

  for (uint64_t mask : state.UndecidedMasks(1)) {
    state.MarkEvaluated(Subspace(mask), true);
  }
  state.Propagate();
  ASSERT_TRUE(state.AllDecided());
  EXPECT_EQ(state.OutliersAtLevel(16), Binomial(32, 16));
  EXPECT_EQ(state.minimal_outlier_seeds().size(), 32u);
  EXPECT_TRUE(state.IsOutlying(Subspace::Full(32)));
  const auto& sparse = static_cast<const SparseLatticeStore&>(state);
  EXPECT_EQ(sparse.allocated_states(), 32u);  // only the evaluated band
}

TEST(SparseLatticeStoreTest, HighDimensionalMixedSeeds) {
  // d = 40, a monotone band: the pair {1,2} outlying (so its up-closure
  // is outlying) and the 38-dim subspace {3..40} non-outlying (so its
  // down-closure is non-outlying). The two closures are disjoint; what is
  // left undecided at level m is exactly the masks containing one of dims
  // 1,2 but not both: 2 * C(38, m-1). Tallies must follow the closed-form
  // closure counts at every level, enumerable or not.
  const int d = 40;
  auto state = MakeLatticeStore(d).value();
  std::vector<int> rest;
  for (int dim = 3; dim <= d; ++dim) rest.push_back(dim);
  state->MarkEvaluated(Subspace::FromOneBased({1, 2}), true);
  state->MarkEvaluated(Subspace::FromOneBased(rest), false);
  state->Propagate();
  for (int m = 1; m <= d; ++m) {
    const uint64_t up = m >= 2 ? Binomial(d - 2, m - 2) : 0;
    const uint64_t down = Binomial(d - 2, m);
    EXPECT_EQ(state->OutliersAtLevel(m), up) << m;
    EXPECT_EQ(state->InferredNonOutliers(m) +
                  state->EvaluatedNonOutliers(m),
              down)
        << m;
    EXPECT_EQ(state->UndecidedCount(m), 2 * Binomial(d - 2, m - 1)) << m;
  }
  EXPECT_EQ(state->StateOf(Subspace::FromOneBased({5})),
            SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state->StateOf(Subspace::FromOneBased({1, 2, 7})),
            SubspaceState::kInferredOutlier);
  EXPECT_EQ(state->StateOf(Subspace::FromOneBased({1, 7})),
            SubspaceState::kUndecided);
}

TEST(IsOutlierStateTest, Classification) {
  EXPECT_TRUE(IsOutlierState(SubspaceState::kEvaluatedOutlier));
  EXPECT_TRUE(IsOutlierState(SubspaceState::kInferredOutlier));
  EXPECT_FALSE(IsOutlierState(SubspaceState::kEvaluatedNonOutlier));
  EXPECT_FALSE(IsOutlierState(SubspaceState::kInferredNonOutlier));
  EXPECT_FALSE(IsOutlierState(SubspaceState::kUndecided));
  EXPECT_FALSE(IsDecided(SubspaceState::kUndecided));
  EXPECT_TRUE(IsDecided(SubspaceState::kInferredOutlier));
}

}  // namespace
}  // namespace hos::lattice
