// Randomised consistency check of the lattice bookkeeping: feed a random
// but monotone ground truth (an up-closed outlier set) to the lattice
// store in a random evaluation order and verify that the inferred states
// always agree with the ground truth, whatever the order of
// MarkEvaluated/Propagate. Runs against both storage backends.

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/combinatorics.h"
#include "src/common/rng.h"
#include "src/lattice/lattice_store.h"

namespace hos::lattice {
namespace {

/// Builds a random monotone (up-closed) outlier predicate over d dims:
/// picks random seed subspaces; everything that contains a seed is an
/// outlier. `num_seeds` == 0 yields the all-non-outlier lattice.
std::vector<bool> RandomUpClosedTruth(int d, int num_seeds, Rng* rng) {
  const uint64_t size = uint64_t{1} << d;
  std::vector<uint64_t> seeds;
  for (int i = 0; i < num_seeds; ++i) {
    seeds.push_back(rng->UniformInt(1, static_cast<int64_t>(size - 1)));
  }
  std::vector<bool> outlier(size, false);
  for (uint64_t mask = 1; mask < size; ++mask) {
    for (uint64_t seed : seeds) {
      if ((mask & seed) == seed) {
        outlier[mask] = true;
        break;
      }
    }
  }
  return outlier;
}

class LatticeFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, LatticeBackend>> {};

TEST_P(LatticeFuzzTest, RandomOrderEvaluationNeverContradictsTruth) {
  const int d = 6;
  const auto [num_seeds, backend] = GetParam();
  Rng rng(1000 + num_seeds);

  for (int trial = 0; trial < 20; ++trial) {
    auto truth = RandomUpClosedTruth(d, num_seeds, &rng);
    auto state = MakeLatticeStore(d, backend).value();

    // Random evaluation order over all masks; skip already-decided ones and
    // propagate at random batch boundaries.
    std::vector<uint64_t> order;
    for (uint64_t mask = 1; mask < (uint64_t{1} << d); ++mask) {
      order.push_back(mask);
    }
    rng.Shuffle(&order);
    for (uint64_t mask : order) {
      Subspace s(mask);
      if (IsDecided(state->StateOf(s))) {
        // Inferred states must match the truth.
        EXPECT_EQ(state->IsOutlying(s), truth[mask])
            << "mask " << mask << " seeds " << num_seeds;
        continue;
      }
      state->MarkEvaluated(s, truth[mask]);
      if (rng.Bernoulli(0.3)) state->Propagate();
    }
    state->Propagate();
    EXPECT_TRUE(state->AllDecided());

    // Final states all agree with the ground truth; per-level counts too.
    for (int m = 1; m <= d; ++m) {
      uint64_t outliers_at_level = 0;
      for (uint64_t mask : MasksOfLevel(d, m)) {
        EXPECT_EQ(state->IsOutlying(Subspace(mask)), truth[mask]);
        outliers_at_level += truth[mask];
      }
      EXPECT_EQ(state->OutliersAtLevel(m), outliers_at_level) << "m=" << m;
    }

    // The minimal seeds generate exactly the truth's up-closure.
    for (uint64_t mask = 1; mask < (uint64_t{1} << d); ++mask) {
      bool covered = false;
      for (const Subspace& seed : state->minimal_outlier_seeds()) {
        if ((mask & seed.mask()) == seed.mask()) {
          covered = true;
          break;
        }
      }
      EXPECT_EQ(covered, truth[mask]) << "mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedCounts, LatticeFuzzTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 4, 8),
                       ::testing::Values(LatticeBackend::kDense,
                                         LatticeBackend::kSparse)),
    [](const auto& info) {
      return "seeds" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == LatticeBackend::kDense ? "_dense"
                                                                : "_sparse");
    });

}  // namespace
}  // namespace hos::lattice
