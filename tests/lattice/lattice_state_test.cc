#include "src/lattice/lattice_state.h"

#include <gtest/gtest.h>

#include "src/common/combinatorics.h"

namespace hos::lattice {
namespace {

Subspace S(std::initializer_list<int> one_based) {
  return Subspace::FromOneBased(std::vector<int>(one_based));
}

TEST(LatticeStateTest, FreshStateAllUndecided) {
  LatticeState state(4);
  EXPECT_EQ(state.num_dims(), 4);
  for (int m = 1; m <= 4; ++m) {
    EXPECT_EQ(state.UndecidedCount(m), Binomial(4, m));
  }
  EXPECT_FALSE(state.AllDecided());
  EXPECT_EQ(state.StateOf(S({1, 2})), SubspaceState::kUndecided);
}

TEST(LatticeStateTest, MarkEvaluatedOutlier) {
  LatticeState state(4);
  state.MarkEvaluated(S({1, 3}), /*outlier=*/true);
  EXPECT_EQ(state.StateOf(S({1, 3})), SubspaceState::kEvaluatedOutlier);
  EXPECT_TRUE(state.IsOutlying(S({1, 3})));
  EXPECT_EQ(state.EvaluatedOutliers(2), 1u);
  EXPECT_EQ(state.UndecidedCount(2), Binomial(4, 2) - 1);
  ASSERT_EQ(state.minimal_outlier_seeds().size(), 1u);
}

TEST(LatticeStateTest, UpwardPruningMarksSupersets) {
  LatticeState state(4);
  state.MarkEvaluated(S({1, 3}), true);
  state.Propagate();
  // Supersets of [1,3]: [1,2,3], [1,3,4], [1,2,3,4].
  EXPECT_EQ(state.StateOf(S({1, 2, 3})), SubspaceState::kInferredOutlier);
  EXPECT_EQ(state.StateOf(S({1, 3, 4})), SubspaceState::kInferredOutlier);
  EXPECT_EQ(state.StateOf(S({1, 2, 3, 4})), SubspaceState::kInferredOutlier);
  // Non-supersets untouched.
  EXPECT_EQ(state.StateOf(S({1, 2})), SubspaceState::kUndecided);
  EXPECT_EQ(state.StateOf(S({2, 3, 4})), SubspaceState::kUndecided);
  EXPECT_EQ(state.InferredOutliers(3), 2u);
  EXPECT_EQ(state.InferredOutliers(4), 1u);
}

TEST(LatticeStateTest, DownwardPruningMarksSubsets) {
  LatticeState state(4);
  state.MarkEvaluated(S({1, 2, 3}), false);
  state.Propagate();
  EXPECT_EQ(state.StateOf(S({1, 2})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state.StateOf(S({1, 3})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state.StateOf(S({2, 3})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state.StateOf(S({1})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state.StateOf(S({2})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state.StateOf(S({3})), SubspaceState::kInferredNonOutlier);
  // [4] and everything containing 4 untouched.
  EXPECT_EQ(state.StateOf(S({4})), SubspaceState::kUndecided);
  EXPECT_EQ(state.StateOf(S({1, 4})), SubspaceState::kUndecided);
}

TEST(LatticeStateTest, PrioritisesOutlierOverNonOutlierResolution) {
  // A subspace can be superset of an outlier seed and subset of a
  // non-outlier seed only if the lattice is inconsistent; with consistent
  // OD monotonicity this cannot happen. Here we merely check both pending
  // lists apply in one Propagate call.
  LatticeState state(4);
  state.MarkEvaluated(S({1}), true);       // prunes supersets upward
  state.MarkEvaluated(S({2, 3}), false);   // prunes subsets downward
  state.Propagate();
  EXPECT_TRUE(state.IsOutlying(S({1, 4})));
  EXPECT_EQ(state.StateOf(S({2})), SubspaceState::kInferredNonOutlier);
  EXPECT_EQ(state.StateOf(S({3})), SubspaceState::kInferredNonOutlier);
}

TEST(LatticeStateTest, MinimalSeedSetStaysMinimal) {
  LatticeState state(4);
  state.MarkEvaluated(S({1, 2, 3}), true);
  EXPECT_EQ(state.minimal_outlier_seeds().size(), 1u);
  // A subset seed replaces the superset.
  state.MarkEvaluated(S({1, 2}), true);
  ASSERT_EQ(state.minimal_outlier_seeds().size(), 1u);
  EXPECT_EQ(state.minimal_outlier_seeds()[0], S({1, 2}));
  // An incomparable seed is added.
  state.MarkEvaluated(S({3, 4}), true);
  EXPECT_EQ(state.minimal_outlier_seeds().size(), 2u);
  // A superset of an existing seed is not added.
  state.MarkEvaluated(S({1, 2, 4}), true);
  EXPECT_EQ(state.minimal_outlier_seeds().size(), 2u);
}

TEST(LatticeStateTest, MaximalNonOutlierSeedsStayMaximal) {
  LatticeState state(4);
  state.MarkEvaluated(S({1, 2}), false);
  state.MarkEvaluated(S({1, 2, 3}), false);  // superset replaces subset
  ASSERT_EQ(state.maximal_non_outlier_seeds().size(), 1u);
  EXPECT_EQ(state.maximal_non_outlier_seeds()[0], S({1, 2, 3}));
  state.MarkEvaluated(S({1, 4}), false);  // incomparable
  EXPECT_EQ(state.maximal_non_outlier_seeds().size(), 2u);
}

TEST(LatticeStateTest, UndecidedFiltersDecidedMasks) {
  LatticeState state(3);
  state.MarkEvaluated(S({1}), true);
  state.Propagate();
  const auto& level2 = state.Undecided(2);
  // [1,2] and [1,3] are inferred outliers; only [2,3] remains.
  ASSERT_EQ(level2.size(), 1u);
  EXPECT_EQ(level2[0], S({2, 3}).mask());
  EXPECT_EQ(state.UndecidedCount(2), 1u);
}

TEST(LatticeStateTest, WorkloadCounters) {
  LatticeState state(4);
  // Initially: C_down_left(3) = C(4,1)*1 + C(4,2)*2 = 16,
  //            C_up_left(3)   = C(4,4)*4 = 4.
  EXPECT_EQ(state.RemainingWorkloadBelow(3), 16u);
  EXPECT_EQ(state.RemainingWorkloadAbove(3), 4u);
  state.MarkEvaluated(S({1}), true);
  state.Propagate();  // prunes upward: 3 of level 2, 3 of level 3, 1 of 4
  EXPECT_EQ(state.RemainingWorkloadBelow(3),
            3u * 1 + 3u * 2);  // 3 singles + 3 pairs left
  EXPECT_EQ(state.RemainingWorkloadAbove(3), 0u);
}

TEST(LatticeStateTest, FullyDecidedLattice) {
  LatticeState state(3);
  state.MarkEvaluated(S({1}), true);
  state.MarkEvaluated(S({2}), false);
  state.MarkEvaluated(S({3}), false);
  state.Propagate();
  // Remaining undecided: [2,3].
  EXPECT_FALSE(state.AllDecided());
  state.MarkEvaluated(S({2, 3}), false);
  state.Propagate();
  EXPECT_TRUE(state.AllDecided());
  // Outliers at each level: level 1: [1]; level 2: [1,2],[1,3]; level 3: all.
  EXPECT_EQ(state.OutliersAtLevel(1), 1u);
  EXPECT_EQ(state.OutliersAtLevel(2), 2u);
  EXPECT_EQ(state.OutliersAtLevel(3), 1u);
}

TEST(IsOutlierStateTest, Classification) {
  EXPECT_TRUE(IsOutlierState(SubspaceState::kEvaluatedOutlier));
  EXPECT_TRUE(IsOutlierState(SubspaceState::kInferredOutlier));
  EXPECT_FALSE(IsOutlierState(SubspaceState::kEvaluatedNonOutlier));
  EXPECT_FALSE(IsOutlierState(SubspaceState::kInferredNonOutlier));
  EXPECT_FALSE(IsOutlierState(SubspaceState::kUndecided));
  EXPECT_FALSE(IsDecided(SubspaceState::kUndecided));
  EXPECT_TRUE(IsDecided(SubspaceState::kInferredOutlier));
}

}  // namespace
}  // namespace hos::lattice
