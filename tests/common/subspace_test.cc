#include "src/common/subspace.h"

#include <gtest/gtest.h>

namespace hos {
namespace {

TEST(SubspaceTest, EmptyByDefault) {
  Subspace s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Dimensionality(), 0);
  EXPECT_EQ(s.ToString(), "[]");
}

TEST(SubspaceTest, FromDimsAndBack) {
  Subspace s = Subspace::FromDims({0, 2, 5});
  EXPECT_EQ(s.Dimensionality(), 3);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_EQ(s.Dims(), (std::vector<int>{0, 2, 5}));
}

TEST(SubspaceTest, OneBasedNotationMatchesPaper) {
  // The paper writes subspaces like [1,3]: dimensions 1 and 3, 1-based.
  Subspace s = Subspace::FromOneBased({1, 3});
  EXPECT_EQ(s.mask(), 0b101u);
  EXPECT_EQ(s.ToString(), "[1,3]");
}

TEST(SubspaceTest, FullSpace) {
  Subspace s = Subspace::Full(4);
  EXPECT_EQ(s.mask(), 0b1111u);
  EXPECT_EQ(s.Dimensionality(), 4);
  EXPECT_EQ(s.ToString(), "[1,2,3,4]");
}

TEST(SubspaceTest, SubsetSuperset) {
  Subspace small = Subspace::FromOneBased({1, 3});
  Subspace big = Subspace::FromOneBased({1, 2, 3});
  Subspace other = Subspace::FromOneBased({2, 4});

  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(small.IsProperSubsetOf(big));
  EXPECT_FALSE(small.IsProperSubsetOf(small));
  EXPECT_TRUE(big.IsSupersetOf(small));
  EXPECT_TRUE(big.IsProperSupersetOf(small));
  EXPECT_FALSE(small.IsSubsetOf(other));
  EXPECT_FALSE(other.IsSubsetOf(small));
}

TEST(SubspaceTest, SetAlgebra) {
  Subspace a = Subspace::FromOneBased({1, 2});
  Subspace b = Subspace::FromOneBased({2, 3});
  EXPECT_EQ(a.Union(b), Subspace::FromOneBased({1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), Subspace::FromOneBased({2}));
  EXPECT_EQ(a.Minus(b), Subspace::FromOneBased({1}));
}

TEST(SubspaceTest, WithWithout) {
  Subspace s = Subspace::FromOneBased({2});
  EXPECT_EQ(s.With(0), Subspace::FromOneBased({1, 2}));
  EXPECT_EQ(s.Without(1), Subspace());
  // Removing an absent dim is a no-op.
  EXPECT_EQ(s.Without(5), s);
}

TEST(SubspaceTest, OrderingByMask) {
  EXPECT_LT(Subspace(0b001), Subspace(0b010));
  EXPECT_LT(Subspace(0b011), Subspace(0b100));
}

TEST(AllSubspacesTest, EnumeratesEverything) {
  auto all = AllSubspaces(4);
  EXPECT_EQ(all.size(), 15u);  // 2^4 - 1
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].mask(), i + 1);
  }
}

TEST(ImmediateSubsetsTest, DropsOneDimension) {
  Subspace s = Subspace::FromOneBased({1, 3, 4});
  auto subs = ImmediateSubsets(s);
  ASSERT_EQ(subs.size(), 3u);
  for (const Subspace& child : subs) {
    EXPECT_EQ(child.Dimensionality(), 2);
    EXPECT_TRUE(child.IsProperSubsetOf(s));
  }
}

TEST(ImmediateSubsetsTest, SingletonHasNoNonEmptySubsets) {
  EXPECT_TRUE(ImmediateSubsets(Subspace::FromOneBased({2})).empty());
}

TEST(ImmediateSupersetsTest, AddsOneDimension) {
  Subspace s = Subspace::FromOneBased({1, 3});
  auto supers = ImmediateSupersets(s, 4);
  ASSERT_EQ(supers.size(), 2u);  // dims 2 and 4 can be added
  for (const Subspace& parent : supers) {
    EXPECT_EQ(parent.Dimensionality(), 3);
    EXPECT_TRUE(parent.IsProperSupersetOf(s));
  }
}

TEST(ImmediateSupersetsTest, FullSpaceHasNone) {
  EXPECT_TRUE(ImmediateSupersets(Subspace::Full(4), 4).empty());
}

}  // namespace
}  // namespace hos
