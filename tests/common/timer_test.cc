#include "src/common/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace hos {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);  // generous upper bound for loaded CI machines
}

TEST(TimerTest, UnitConversionsConsistent) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double seconds = timer.ElapsedSeconds();
  double millis = timer.ElapsedMillis();
  double micros = timer.ElapsedMicros();
  // Within an order of tolerance (separate now() calls).
  EXPECT_NEAR(millis / 1e3, seconds, 0.05);
  EXPECT_NEAR(micros / 1e6, seconds, 0.05);
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(AccumulatingTimerTest, AccumulatesIntervals) {
  AccumulatingTimer timer;
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 0.0);
  timer.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.Stop();
  double after_first = timer.TotalSeconds();
  EXPECT_GE(after_first, 0.008);
  timer.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.Stop();
  EXPECT_GE(timer.TotalSeconds(), after_first + 0.008);
}

TEST(AccumulatingTimerTest, StopWithoutStartIsNoop) {
  AccumulatingTimer timer;
  timer.Stop();
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 0.0);
}

TEST(AccumulatingTimerTest, DoubleStopCountsOnce) {
  AccumulatingTimer timer;
  timer.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Stop();
  double total = timer.TotalSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Stop();  // no-op: not running
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), total);
}

TEST(AccumulatingTimerTest, ResetClears) {
  AccumulatingTimer timer;
  timer.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Stop();
  timer.Reset();
  EXPECT_DOUBLE_EQ(timer.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace hos
