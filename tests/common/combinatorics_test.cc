#include "src/common/combinatorics.h"

#include <gtest/gtest.h>

namespace hos {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(Binomial(0, 0), 1u);
  EXPECT_EQ(Binomial(4, 0), 1u);
  EXPECT_EQ(Binomial(4, 1), 4u);
  EXPECT_EQ(Binomial(4, 2), 6u);
  EXPECT_EQ(Binomial(4, 4), 1u);
  EXPECT_EQ(Binomial(10, 5), 252u);
}

TEST(BinomialTest, OutOfRangeIsZero) {
  EXPECT_EQ(Binomial(4, 5), 0u);
  EXPECT_EQ(Binomial(4, -1), 0u);
  EXPECT_EQ(Binomial(-1, 0), 0u);
}

TEST(BinomialTest, PascalIdentityHoldsForAllSmallN) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_EQ(Binomial(n, k), Binomial(n - 1, k - 1) + Binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialTest, LargeExactValue) {
  EXPECT_EQ(Binomial(62, 31), 465428353255261088ull);
}

// The paper's §3.1 worked example: in a 4-dimensional space,
// DSF([1,2,3]) = C(3,1)*1 + C(3,2)*2 = 9.
TEST(SavingFactorTest, PaperDsfExample) {
  EXPECT_EQ(DownwardSavingFactor(3), 9u);
}

// ... and USF([1,4]) = C(2,1)*(2+1) + C(2,2)*(2+2) = 10.
TEST(SavingFactorTest, PaperUsfExample) {
  EXPECT_EQ(UpwardSavingFactor(2, 4), 10u);
}

TEST(SavingFactorTest, DsfBoundary) {
  // A 1-dimensional subspace has no non-empty proper subsets.
  EXPECT_EQ(DownwardSavingFactor(1), 0u);
  // DSF(2) = C(2,1)*1 = 2.
  EXPECT_EQ(DownwardSavingFactor(2), 2u);
}

TEST(SavingFactorTest, UsfBoundary) {
  // The full space has no supersets.
  EXPECT_EQ(UpwardSavingFactor(4, 4), 0u);
  // USF(3 in 4) = C(1,1)*(3+1) = 4.
  EXPECT_EQ(UpwardSavingFactor(3, 4), 4u);
}

// DSF(m) counts the workload sum_{i<m} C(m,i)*i of all proper non-empty
// subsets: verify against direct enumeration.
TEST(SavingFactorTest, DsfMatchesEnumeration) {
  for (int m = 1; m <= 12; ++m) {
    uint64_t expected = 0;
    for (const uint64_t mask : MasksOfLevel(m, m)) {
      (void)mask;  // only one mask at level m: the full one
    }
    for (int i = 1; i < m; ++i) {
      expected += MasksOfLevel(m, i).size() * static_cast<uint64_t>(i);
    }
    EXPECT_EQ(DownwardSavingFactor(m), expected) << "m=" << m;
  }
}

TEST(SavingFactorTest, UsfMatchesEnumeration) {
  const int d = 8;
  for (int m = 1; m <= d; ++m) {
    // Supersets of a fixed m-dim subspace with m+i dims: C(d-m, i) many,
    // each costing (m+i).
    uint64_t expected = 0;
    for (int i = 1; i <= d - m; ++i) {
      expected += Binomial(d - m, i) * static_cast<uint64_t>(m + i);
    }
    EXPECT_EQ(UpwardSavingFactor(m, d), expected);
  }
}

TEST(WorkloadTest, BelowAndAbovePartitionTotal) {
  const int d = 10;
  // Total workload over all levels = sum_m C(d,m)*m.
  uint64_t total = 0;
  for (int m = 1; m <= d; ++m) total += Binomial(d, m) * m;
  for (int m = 1; m <= d; ++m) {
    EXPECT_EQ(TotalWorkloadBelow(m, d) + TotalWorkloadAbove(m, d) +
                  Binomial(d, m) * m,
              total)
        << "m=" << m;
  }
}

TEST(WorkloadTest, Boundaries) {
  EXPECT_EQ(TotalWorkloadBelow(1, 6), 0u);
  EXPECT_EQ(TotalWorkloadAbove(6, 6), 0u);
  EXPECT_EQ(TotalWorkloadBelow(2, 6), 6u);   // C(6,1)*1
  EXPECT_EQ(TotalWorkloadAbove(5, 6), 6u);   // C(6,6)*6
}

TEST(MasksOfLevelTest, CountsMatchBinomial) {
  for (int d = 1; d <= 12; ++d) {
    for (int m = 0; m <= d; ++m) {
      EXPECT_EQ(MasksOfLevel(d, m).size(), Binomial(d, m));
    }
  }
}

TEST(MasksOfLevelTest, MasksHaveCorrectPopcountAndAscend) {
  auto masks = MasksOfLevel(8, 3);
  for (size_t i = 0; i < masks.size(); ++i) {
    EXPECT_EQ(PopCount(masks[i]), 3);
    if (i > 0) {
      EXPECT_LT(masks[i - 1], masks[i]);
    }
    EXPECT_LT(masks[i], uint64_t{1} << 8);
  }
}

TEST(MasksOfLevelTest, LevelZeroIsEmptyMask) {
  auto masks = MasksOfLevel(5, 0);
  ASSERT_EQ(masks.size(), 1u);
  EXPECT_EQ(masks[0], 0u);
}

TEST(MasksOfLevelTest, FullLevel) {
  auto masks = MasksOfLevel(5, 5);
  ASSERT_EQ(masks.size(), 1u);
  EXPECT_EQ(masks[0], 0b11111u);
}

}  // namespace
}  // namespace hos
