#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace hos {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::NotFound("gone");
  Status b = a;
  EXPECT_EQ(a, b);
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(a.IsNotFound());  // copy did not alias
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status a = Status::IoError("disk");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsIoError());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    HOS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusConvertsToInternal) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::NotFound("no");
  };
  auto consume = [&](bool ok) -> Status {
    HOS_ASSIGN_OR_RETURN(int v, produce(ok));
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_TRUE(consume(true).ok());
  EXPECT_TRUE(consume(false).IsNotFound());
}

}  // namespace
}  // namespace hos
