#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace hos {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { Logger::SetMinLevel(LogLevel::kWarning); }
};

TEST_F(LoggingTest, DefaultMinLevelIsWarning) {
  EXPECT_EQ(Logger::min_level(), LogLevel::kWarning);
}

TEST_F(LoggingTest, SetMinLevelRoundTrips) {
  Logger::SetMinLevel(LogLevel::kDebug);
  EXPECT_EQ(Logger::min_level(), LogLevel::kDebug);
  Logger::SetMinLevel(LogLevel::kError);
  EXPECT_EQ(Logger::min_level(), LogLevel::kError);
}

TEST_F(LoggingTest, StreamMacroComposesMessage) {
  // Captures stderr around an emitted line.
  Logger::SetMinLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  HOS_LOG(Info) << "value=" << 42 << " name=" << "x";
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[INFO]"), std::string::npos);
  EXPECT_NE(output.find("value=42 name=x"), std::string::npos);
}

TEST_F(LoggingTest, BelowThresholdIsSuppressed) {
  Logger::SetMinLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  HOS_LOG(Debug) << "invisible";
  HOS_LOG(Warning) << "also invisible";
  HOS_LOG(Error) << "visible";
  std::string output = testing::internal::GetCapturedStderr();
  EXPECT_EQ(output.find("invisible"), std::string::npos);
  EXPECT_NE(output.find("[ERROR] visible"), std::string::npos);
}

}  // namespace
}  // namespace hos
