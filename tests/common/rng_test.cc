#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hos {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 20; ++i) {
    any_diff |= (a.Uniform() != b.Uniform());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(RngTest, GaussianRoughMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementZero) {
  Rng rng(5);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

}  // namespace
}  // namespace hos
