#include "src/service/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hos::service {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&counter]() { counter.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, ReportsConfiguredThreadCount) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.num_threads(), 8);
}

TEST(ThreadPoolTest, SubmitWithResultReturnsValue) {
  ThreadPool pool(2);
  std::future<int> f = pool.SubmitWithResult([]() { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitWithResultPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<int> f = pool.SubmitWithResult(
      []() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool pool(2);
  std::future<std::thread::id> f =
      pool.SubmitWithResult([]() { return std::this_thread::get_id(); });
  EXPECT_NE(f.get(), std::this_thread::get_id());
}

TEST(ThreadPoolTest, ManyProducersManyTasks) {
  std::atomic<int> counter{0};
  ThreadPool pool(4);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter]() {
      for (int i = 0; i < 250; ++i) {
        pool.Submit([&counter]() { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  // Wait for the queue to drain (bounded spin; each task is trivial).
  for (int spin = 0; spin < 1000 && counter.load() < 1000; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, PendingDrainsToZero) {
  ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    pool.Submit([]() {});
  }
  for (int spin = 0; spin < 1000 && pool.pending() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.pending(), 0u);
}

}  // namespace
}  // namespace hos::service
