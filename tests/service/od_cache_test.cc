#include "src/service/od_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace hos::service {
namespace {

TEST(OdCacheTest, MissThenHit) {
  OdCache cache;
  double od = 0.0;
  EXPECT_FALSE(cache.Lookup(7, 0b101, &od));
  cache.Store(7, 0b101, 3.25);
  ASSERT_TRUE(cache.Lookup(7, 0b101, &od));
  EXPECT_EQ(od, 3.25);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(OdCacheTest, KeysAreDistinctPerPointAndSubspace) {
  OdCache cache;
  cache.Store(1, 0b01, 1.0);
  cache.Store(1, 0b10, 2.0);
  cache.Store(2, 0b01, 3.0);
  double od = 0.0;
  ASSERT_TRUE(cache.Lookup(1, 0b01, &od));
  EXPECT_EQ(od, 1.0);
  ASSERT_TRUE(cache.Lookup(1, 0b10, &od));
  EXPECT_EQ(od, 2.0);
  ASSERT_TRUE(cache.Lookup(2, 0b01, &od));
  EXPECT_EQ(od, 3.0);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(OdCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  OdCacheConfig config;
  config.num_shards = 1;  // single shard makes eviction order observable
  config.capacity = 3;
  OdCache cache(config);

  cache.Store(1, 1, 1.0);
  cache.Store(2, 1, 2.0);
  cache.Store(3, 1, 3.0);

  // Touch key 1 so key 2 becomes the LRU victim.
  double od = 0.0;
  ASSERT_TRUE(cache.Lookup(1, 1, &od));
  cache.Store(4, 1, 4.0);  // evicts (2, 1)

  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Lookup(2, 1, &od));
  EXPECT_TRUE(cache.Lookup(1, 1, &od));
  EXPECT_TRUE(cache.Lookup(3, 1, &od));
  EXPECT_TRUE(cache.Lookup(4, 1, &od));
  EXPECT_EQ(cache.size(), 3u);
}

TEST(OdCacheTest, StoreOfExistingKeyUpdatesAndRefreshes) {
  OdCacheConfig config;
  config.num_shards = 1;
  config.capacity = 2;
  OdCache cache(config);

  cache.Store(1, 1, 1.0);
  cache.Store(2, 1, 2.0);
  cache.Store(1, 1, 10.0);  // refresh: key 2 is now LRU
  cache.Store(3, 1, 3.0);   // evicts (2, 1)

  double od = 0.0;
  ASSERT_TRUE(cache.Lookup(1, 1, &od));
  EXPECT_EQ(od, 10.0);
  EXPECT_FALSE(cache.Lookup(2, 1, &od));
}

TEST(OdCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  OdCacheConfig config;
  config.num_shards = 5;
  OdCache cache(config);
  EXPECT_EQ(cache.num_shards(), 8);
}

TEST(OdCacheTest, ClearEmptiesButKeepsCounters) {
  OdCache cache;
  cache.Store(1, 1, 1.0);
  double od = 0.0;
  ASSERT_TRUE(cache.Lookup(1, 1, &od));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(1, 1, &od));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

// Striping smoke test: hammer one cache from many threads across a key
// space larger than capacity; under TSan this exercises the per-shard
// locking, and every successful lookup must return the stored value.
TEST(OdCacheTest, ConcurrentMixedWorkloadIsConsistent) {
  OdCacheConfig config;
  config.capacity = 256;
  config.num_shards = 8;
  OdCache cache(config);

  auto value_for = [](data::PointId id, uint64_t mask) {
    return static_cast<double>(id) * 1000.0 + static_cast<double>(mask);
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &value_for, t]() {
      for (int round = 0; round < 200; ++round) {
        for (uint64_t key = 0; key < 64; ++key) {
          const data::PointId id = static_cast<data::PointId>((t + key) % 32);
          const uint64_t mask = key % 16 + 1;
          double od = 0.0;
          if (cache.Lookup(id, mask, &od)) {
            EXPECT_EQ(od, value_for(id, mask));
          } else {
            cache.Store(id, mask, value_for(id, mask));
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 256u);
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace hos::service
