#include "src/service/od_cache.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace hos::service {
namespace {

// Dataset version most tests pin; the version-keying tests vary it.
constexpr uint64_t kV = 7;

TEST(OdCacheTest, MissThenHit) {
  OdCache cache;
  double od = 0.0;
  EXPECT_FALSE(cache.Lookup(kV, 7, 0b101, &od));
  cache.Store(kV, 7, 0b101, 3.25);
  ASSERT_TRUE(cache.Lookup(kV, 7, 0b101, &od));
  EXPECT_EQ(od, 3.25);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(OdCacheTest, KeysAreDistinctPerPointAndSubspace) {
  OdCache cache;
  cache.Store(kV, 1, 0b01, 1.0);
  cache.Store(kV, 1, 0b10, 2.0);
  cache.Store(kV, 2, 0b01, 3.0);
  double od = 0.0;
  ASSERT_TRUE(cache.Lookup(kV, 1, 0b01, &od));
  EXPECT_EQ(od, 1.0);
  ASSERT_TRUE(cache.Lookup(kV, 1, 0b10, &od));
  EXPECT_EQ(od, 2.0);
  ASSERT_TRUE(cache.Lookup(kV, 2, 0b01, &od));
  EXPECT_EQ(od, 3.0);
  EXPECT_EQ(cache.size(), 3u);
}

// The streaming-ingest acceptance property: a value stored at one dataset
// version is unreachable from any other version, so the cache can never
// serve an OD computed against an older (or newer) dataset state.
TEST(OdCacheTest, NeverServesAcrossDatasetVersions) {
  OdCache cache;
  cache.Store(/*version=*/1, 5, 0b11, 4.5);
  double od = 0.0;
  EXPECT_FALSE(cache.Lookup(/*version=*/2, 5, 0b11, &od));
  EXPECT_FALSE(cache.Lookup(/*version=*/0, 5, 0b11, &od));
  ASSERT_TRUE(cache.Lookup(/*version=*/1, 5, 0b11, &od));
  EXPECT_EQ(od, 4.5);

  // Both versions may coexist; each lookup resolves to its own epoch.
  cache.Store(/*version=*/2, 5, 0b11, 9.75);
  ASSERT_TRUE(cache.Lookup(/*version=*/1, 5, 0b11, &od));
  EXPECT_EQ(od, 4.5);
  ASSERT_TRUE(cache.Lookup(/*version=*/2, 5, 0b11, &od));
  EXPECT_EQ(od, 9.75);
}

TEST(OdCacheTest, VersionViewBindsItsVersion) {
  OdCache cache;
  OdCache::VersionView v1(&cache, 1);
  OdCache::VersionView v2(&cache, 2);

  v1.Store(3, 0b100, 1.5);
  double od = 0.0;
  ASSERT_TRUE(v1.Lookup(3, 0b100, &od));
  EXPECT_EQ(od, 1.5);
  EXPECT_FALSE(v2.Lookup(3, 0b100, &od));

  // A view over a null cache is a no-op store (cache disabled).
  OdCache::VersionView disabled(nullptr, 1);
  disabled.Store(3, 0b100, 2.0);
  EXPECT_FALSE(disabled.Lookup(3, 0b100, &od));
}

TEST(OdCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  OdCacheConfig config;
  config.num_shards = 1;  // single shard makes eviction order observable
  config.capacity = 3;
  OdCache cache(config);

  cache.Store(kV, 1, 1, 1.0);
  cache.Store(kV, 2, 1, 2.0);
  cache.Store(kV, 3, 1, 3.0);

  // Touch key 1 so key 2 becomes the LRU victim.
  double od = 0.0;
  ASSERT_TRUE(cache.Lookup(kV, 1, 1, &od));
  cache.Store(kV, 4, 1, 4.0);  // evicts (2, 1)

  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.Lookup(kV, 2, 1, &od));
  EXPECT_TRUE(cache.Lookup(kV, 1, 1, &od));
  EXPECT_TRUE(cache.Lookup(kV, 3, 1, &od));
  EXPECT_TRUE(cache.Lookup(kV, 4, 1, &od));
  EXPECT_EQ(cache.size(), 3u);
}

// Dead-version entries are not pinned: they age out through the same LRU
// as any other key once new-version traffic displaces them.
TEST(OdCacheTest, OldVersionEntriesAgeOutUnderNewVersionTraffic) {
  OdCacheConfig config;
  config.num_shards = 1;
  config.capacity = 4;
  OdCache cache(config);

  cache.Store(/*version=*/1, 1, 1, 1.0);
  cache.Store(/*version=*/1, 2, 1, 2.0);
  for (data::PointId id = 1; id <= 4; ++id) {
    cache.Store(/*version=*/2, id, 1, 10.0 + id);
  }
  double od = 0.0;
  EXPECT_FALSE(cache.Lookup(/*version=*/1, 1, 1, &od));
  EXPECT_FALSE(cache.Lookup(/*version=*/1, 2, 1, &od));
  ASSERT_TRUE(cache.Lookup(/*version=*/2, 4, 1, &od));
  EXPECT_EQ(od, 14.0);
}

TEST(OdCacheTest, StoreOfExistingKeyUpdatesAndRefreshes) {
  OdCacheConfig config;
  config.num_shards = 1;
  config.capacity = 2;
  OdCache cache(config);

  cache.Store(kV, 1, 1, 1.0);
  cache.Store(kV, 2, 1, 2.0);
  cache.Store(kV, 1, 1, 10.0);  // refresh: key 2 is now LRU
  cache.Store(kV, 3, 1, 3.0);   // evicts (2, 1)

  double od = 0.0;
  ASSERT_TRUE(cache.Lookup(kV, 1, 1, &od));
  EXPECT_EQ(od, 10.0);
  EXPECT_FALSE(cache.Lookup(kV, 2, 1, &od));
}

TEST(OdCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  OdCacheConfig config;
  config.num_shards = 5;
  OdCache cache(config);
  EXPECT_EQ(cache.num_shards(), 8);
}

TEST(OdCacheTest, ClearEmptiesButKeepsCounters) {
  OdCache cache;
  cache.Store(kV, 1, 1, 1.0);
  double od = 0.0;
  ASSERT_TRUE(cache.Lookup(kV, 1, 1, &od));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(kV, 1, 1, &od));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

// Striping smoke test: hammer one cache from many threads across a key
// space larger than capacity; under TSan this exercises the per-shard
// locking, and every successful lookup must return the stored value.
// Threads alternate between two dataset versions to cover version-keyed
// paths under concurrency too.
TEST(OdCacheTest, ConcurrentMixedWorkloadIsConsistent) {
  OdCacheConfig config;
  config.capacity = 256;
  config.num_shards = 8;
  OdCache cache(config);

  auto value_for = [](uint64_t version, data::PointId id, uint64_t mask) {
    return static_cast<double>(version) * 1e6 +
           static_cast<double>(id) * 1000.0 + static_cast<double>(mask);
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, &value_for, t]() {
      for (int round = 0; round < 200; ++round) {
        for (uint64_t key = 0; key < 64; ++key) {
          const uint64_t version = (t + round) % 2;
          const data::PointId id = static_cast<data::PointId>((t + key) % 32);
          const uint64_t mask = key % 16 + 1;
          double od = 0.0;
          if (cache.Lookup(version, id, mask, &od)) {
            EXPECT_EQ(od, value_for(version, id, mask));
          } else {
            cache.Store(version, id, mask, value_for(version, id, mask));
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 256u);
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace hos::service
