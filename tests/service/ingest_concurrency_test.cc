// Concurrency test for the streaming-ingest path (runs in CI under
// ThreadSanitizer via the "service" / "ingest" labels): one writer thread
// drives AppendBatch — crossing the rebuild-policy threshold repeatedly so
// background rebuilds commit mid-flight — while the query pool serves
// QueryBatch. The epoch-lock contract under test:
//
//  * every result's reported dataset_version corresponds to a dataset
//    state that actually existed — appends commit whole batches, so the
//    only versions ever observable are v0 + i * batch_size;
//  * versions observed by one thread issuing queries sequentially never
//    go backwards;
//  * a query issued after AppendBatch returns sees at least that batch's
//    version (its rows included in kNN results, its version reported).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "src/data/generator.h"
#include "src/service/query_service.h"

namespace hos::service {
namespace {

constexpr int kDims = 5;
constexpr size_t kInitialRows = 120;
constexpr size_t kBatchRows = 8;
constexpr int kBatches = 24;

core::HosMiner BuildMiner(uint64_t seed) {
  Rng rng(seed);
  data::Dataset dataset = data::GenerateUniform(kInitialRows, kDims, &rng);
  core::HosMinerConfig config;
  config.k = 3;
  config.threshold = 0.8;
  config.normalization = data::NormalizationKind::kNone;
  config.sample_size = 0;
  config.index = core::IndexKind::kXTree;
  auto miner = core::HosMiner::Build(std::move(dataset), config);
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

TEST(IngestConcurrencyTest, AppendWhileServingReportsConsistentVersions) {
  QueryServiceConfig config;
  config.num_threads = 4;
  // Aggressive rebuild policy so several background rebuilds commit while
  // queries are in flight.
  config.ingest.min_delta_rows = kBatchRows;
  config.ingest.rebuild_delta_fraction = 0.05;
  config.ingest.background_rebuild = true;
  QueryService service(BuildMiner(21), config);
  const uint64_t v0 = service.Stats().dataset_version;

  Rng row_rng(77);
  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> last_committed{v0};

  std::thread writer([&]() {
    for (int b = 0; b < kBatches; ++b) {
      std::vector<std::vector<double>> rows(kBatchRows,
                                            std::vector<double>(kDims));
      for (auto& row : rows) {
        for (double& cell : row) cell = row_rng.Uniform();
      }
      auto version = service.AppendBatch(rows);
      ASSERT_TRUE(version.ok()) << version.status().ToString();
      // Batches commit atomically and in order.
      EXPECT_EQ(*version, v0 + (static_cast<uint64_t>(b) + 1) * kBatchRows);
      last_committed.store(*version, std::memory_order_release);
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t]() {
      uint64_t last_seen = v0;
      std::vector<data::PointId> ids = {0, 5, static_cast<data::PointId>(
                                                  10 + t)};
      while (!writer_done.load(std::memory_order_acquire)) {
        const uint64_t floor =
            last_committed.load(std::memory_order_acquire);
        auto results = service.QueryBatch(ids);
        ASSERT_TRUE(results.ok()) << results.status().ToString();
        for (const core::QueryResult& result : *results) {
          // Only whole-batch versions can exist.
          ASSERT_EQ((result.dataset_version - v0) % kBatchRows, 0u)
              << "version " << result.dataset_version
              << " corresponds to no committed dataset state";
          ASSERT_LE(result.dataset_version,
                    v0 + static_cast<uint64_t>(kBatches) * kBatchRows);
          // Queries issued after a commit observed must not report an
          // older state than the last version this thread already saw.
          ASSERT_GE(result.dataset_version, last_seen)
              << "version went backwards";
          ASSERT_GE(result.dataset_version, floor)
              << "query started after commit " << floor
              << " but reported an older state";
          last_seen = result.dataset_version;
        }
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
  service.WaitForRebuilds();

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.rows_ingested, kBatchRows * kBatches);
  EXPECT_EQ(stats.append_batches, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats.dataset_version,
            v0 + static_cast<uint64_t>(kBatches) * kBatchRows);
  EXPECT_GT(stats.rebuilds_completed, 0u);

  // After the dust settles, the service still answers and reports the
  // final version, with every appended row in the dataset.
  auto final_result = service.Query(0);
  ASSERT_TRUE(final_result.ok());
  EXPECT_EQ(final_result->dataset_version, stats.dataset_version);
  EXPECT_EQ(service.miner().dataset().size(),
            kInitialRows + kBatchRows * kBatches);
}

}  // namespace
}  // namespace hos::service
