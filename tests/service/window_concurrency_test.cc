// Concurrency fuzz for the sliding-window path (runs in CI under
// ThreadSanitizer via the "service" / "window" labels): appender threads
// drive AppendBatch — with window_max_rows set so the commit itself evicts
// the oldest rows — deleter threads tombstone disjoint id pools, and query
// threads hammer a mixed live/dead id set, while background rebuilds and
// drift-triggered relearns run on the maintenance worker. The contract:
//
//  * every reported dataset_version is a *committed window state* — a
//    version some AppendBatch or DeleteRows call returned (or the initial
//    version). Appends + auto-eviction commit inside one writer-lock
//    critical section, so no query may observe a half-applied window;
//  * versions observed by one thread never go backwards;
//  * a query for a dead id fails with NotFound, never with a stale answer
//    or a crash, even when the row died mid-flight.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/data/generator.h"
#include "src/service/query_service.h"

namespace hos::service {
namespace {

constexpr int kDims = 5;
constexpr size_t kInitialRows = 160;
constexpr size_t kBatchRows = 8;
constexpr int kBatchesPerAppender = 16;
constexpr int kAppenders = 2;
constexpr int kDeleters = 2;
constexpr int kReaders = 3;

core::HosMiner BuildMiner() {
  Rng rng(21);
  data::Dataset dataset = data::GenerateUniform(kInitialRows, kDims, &rng);
  core::HosMinerConfig config;
  config.k = 3;
  config.threshold = 0.8;
  config.normalization = data::NormalizationKind::kNone;
  config.sample_size = 5;  // learning on, so relearns have work to do
  config.index = core::IndexKind::kXTree;
  auto miner = core::HosMiner::Build(std::move(dataset), config);
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

TEST(WindowConcurrencyTest, AppendEvictDeleteWhileServing) {
  QueryServiceConfig config;
  config.num_threads = 4;
  // Aggressive maintenance so rebuilds AND relearns commit mid-flight.
  config.ingest.min_delta_rows = kBatchRows;
  config.ingest.rebuild_delta_fraction = 0.05;
  config.ingest.background_rebuild = true;
  config.ingest.relearn_staleness_threshold = 0.10;
  // Tight row-count window: every appender batch past the cap evicts
  // inside the same commit.
  config.ingest.window_max_rows = kInitialRows + 4 * kBatchRows;
  QueryService service(BuildMiner(), config);
  const uint64_t v0 = service.Stats().dataset_version;

  // Every version any mutating call committed. Readers validate against
  // this set only after all threads join, so late inserts are harmless.
  std::mutex committed_mu;
  std::unordered_set<uint64_t> committed = {v0};
  auto record_committed = [&](uint64_t version) {
    std::lock_guard<std::mutex> lock(committed_mu);
    committed.insert(version);
  };

  std::atomic<bool> writers_done{false};
  std::atomic<int> writers_left{kAppenders + kDeleters};
  auto writer_exits = [&]() {
    if (writers_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      writers_done.store(true, std::memory_order_release);
    }
  };

  std::vector<std::thread> writers;
  for (int a = 0; a < kAppenders; ++a) {
    writers.emplace_back([&, a]() {
      Rng rng(100 + static_cast<uint64_t>(a));
      for (int b = 0; b < kBatchesPerAppender; ++b) {
        std::vector<std::vector<double>> rows(kBatchRows,
                                              std::vector<double>(kDims));
        for (auto& row : rows) {
          for (double& cell : row) cell = rng.Uniform();
        }
        auto version = service.AppendBatch(rows);
        ASSERT_TRUE(version.ok()) << version.status().ToString();
        record_committed(*version);
      }
      writer_exits();
    });
  }
  // Deleters own disjoint id pools among the initial rows. A pool id may
  // already have been window-evicted by an append commit — then the batch
  // fails NotFound as a whole, which is the all-or-nothing contract, not
  // an error of the test.
  for (int d = 0; d < kDeleters; ++d) {
    writers.emplace_back([&, d]() {
      const data::PointId begin =
          static_cast<data::PointId>(kInitialRows - 40 + 20 * d);
      for (data::PointId id = begin; id < begin + 20; ++id) {
        const std::vector<data::PointId> one = {id};
        auto version = service.DeleteRows(one);
        ASSERT_TRUE(version.ok() || version.status().IsNotFound())
            << version.status().ToString();
        if (version.ok()) record_committed(*version);
      }
      writer_exits();
    });
  }

  // Readers mix ids that stay live longest (freshly appended ones cannot
  // be addressed by a fixed list, so probe the delete pools and the oldest
  // rows — both may die mid-flight, which must yield NotFound, nothing
  // else).
  std::vector<std::vector<uint64_t>> observed(kReaders);
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t]() {
      const std::vector<data::PointId> ids = {
          static_cast<data::PointId>(t),
          static_cast<data::PointId>(kInitialRows - 40 + 7 * t),
          static_cast<data::PointId>(kInitialRows - 1)};
      uint64_t last_seen = v0;
      while (!writers_done.load(std::memory_order_acquire)) {
        for (data::PointId id : ids) {
          auto result = service.Query(id);
          if (!result.ok()) {
            ASSERT_TRUE(result.status().IsNotFound())
                << result.status().ToString();
            continue;
          }
          ASSERT_GE(result->dataset_version, last_seen)
              << "version went backwards";
          last_seen = result->dataset_version;
          observed[t].push_back(result->dataset_version);
        }
      }
    });
  }

  for (std::thread& writer : writers) writer.join();
  for (std::thread& reader : readers) reader.join();
  service.WaitForRebuilds();

  // Every version a query reported is a committed window state.
  for (int t = 0; t < kReaders; ++t) {
    for (uint64_t version : observed[t]) {
      ASSERT_TRUE(committed.count(version) > 0)
          << "reader " << t << " observed version " << version
          << ", which no mutating call committed";
    }
  }

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.rows_ingested,
            static_cast<uint64_t>(kAppenders) * kBatchesPerAppender *
                kBatchRows);
  EXPECT_LE(stats.live_rows, config.ingest.window_max_rows);
  EXPECT_GT(stats.rows_evicted, 0u);
  EXPECT_GT(stats.rebuilds_completed, 0u);

  // The service still answers on a live row and reports the final state.
  bool answered = false;
  for (data::PointId id = 0;
       id < static_cast<data::PointId>(service.miner().dataset().size());
       ++id) {
    if (!service.miner().dataset().IsLive(id)) continue;
    auto result = service.Query(id);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->dataset_version, service.Stats().dataset_version);
    answered = true;
    break;
  }
  EXPECT_TRUE(answered);
}

}  // namespace
}  // namespace hos::service
