// Serving-layer sliding-window behavior: clean NotFound (and the
// evicted_query_rejects counter, distinct from stale_fallbacks) for
// deleted/evicted ids, the window_max_rows auto-eviction policy, TTL
// eviction by version watermark, and drift-triggered relearning firing
// from the staleness signal with no manual RefreshLearning call — while
// answers for already-committed versions never change.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/data/generator.h"
#include "src/service/query_service.h"

namespace hos::service {
namespace {

constexpr int kDims = 5;

core::HosMiner BuildMiner(size_t rows, int sample_size = 0) {
  Rng rng(33);
  data::Dataset dataset = data::GenerateUniform(rows, kDims, &rng);
  core::HosMinerConfig config;
  config.k = 3;
  config.threshold = 0.8;
  config.normalization = data::NormalizationKind::kNone;
  config.sample_size = sample_size;
  config.index = core::IndexKind::kXTree;
  auto miner = core::HosMiner::Build(std::move(dataset), config);
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

std::vector<std::vector<double>> RandomRows(size_t n, Rng* rng) {
  std::vector<std::vector<double>> rows(n, std::vector<double>(kDims));
  for (auto& row : rows) {
    for (double& cell : row) cell = rng->Uniform();
  }
  return rows;
}

TEST(WindowServiceTest, DeletedIdAnswersNotFoundAndCountsReject) {
  QueryServiceConfig config;
  config.num_threads = 2;
  QueryService service(BuildMiner(40), config);

  ASSERT_TRUE(service.Query(7).ok());
  const std::vector<data::PointId> doomed = {7};
  auto version = service.DeleteRows(doomed);
  ASSERT_TRUE(version.ok()) << version.status().ToString();

  auto result = service.Query(7);
  EXPECT_TRUE(result.status().IsNotFound()) << result.status().ToString();

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.rows_deleted, 1u);
  EXPECT_EQ(stats.evicted_query_rejects, 1u);
  // The reject is a client-visible miss, NOT an internal snapshot
  // degradation: the two counters must stay distinct.
  EXPECT_EQ(stats.stale_fallbacks, 0u);
  EXPECT_EQ(stats.live_rows, 39u);
  EXPECT_EQ(stats.tombstone_rows, 1u);

  // Other rows keep answering.
  EXPECT_TRUE(service.Query(8).ok());

  // Deleting a dead row fails cleanly and changes nothing.
  auto again = service.DeleteRows(doomed);
  EXPECT_TRUE(again.status().IsNotFound());
  EXPECT_EQ(service.Stats().rows_deleted, 1u);
}

TEST(WindowServiceTest, WindowMaxRowsEvictsOldestAtAppend) {
  QueryServiceConfig config;
  config.num_threads = 2;
  config.ingest.window_max_rows = 48;
  config.ingest.rebuild_delta_fraction = 0.0;  // isolate the window policy
  QueryService service(BuildMiner(40), config);

  Rng rng(9);
  ASSERT_TRUE(service.AppendBatch(RandomRows(16, &rng)).ok());

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.live_rows, 48u);
  EXPECT_EQ(stats.rows_evicted, 8u);  // 56 live would exceed the window
  EXPECT_EQ(stats.rows_ingested, 16u);

  // The oldest rows slid out; the newest survived.
  EXPECT_TRUE(service.Query(0).status().IsNotFound());
  EXPECT_TRUE(service.Query(7).status().IsNotFound());
  EXPECT_TRUE(service.Query(8).ok());
  EXPECT_TRUE(service.Query(55).ok());

  // A batch below the limit evicts nothing further.
  ASSERT_TRUE(service.AppendBatch(RandomRows(0, &rng)).ok());
  EXPECT_EQ(service.Stats().rows_evicted, 8u);
}

TEST(WindowServiceTest, EvictBeforeUsesTheVersionWatermark) {
  QueryServiceConfig config;
  config.ingest.rebuild_delta_fraction = 0.0;
  QueryService service(BuildMiner(30), config);

  // Watermark taken now covers exactly the initial 30 rows.
  const uint64_t watermark = service.Stats().dataset_version + 1;
  Rng rng(4);
  ASSERT_TRUE(service.AppendBatch(RandomRows(10, &rng)).ok());

  EXPECT_EQ(service.EvictBefore(watermark), 30u);
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.rows_evicted, 30u);
  EXPECT_EQ(stats.live_rows, 10u);
  EXPECT_TRUE(service.Query(29).status().IsNotFound());
  EXPECT_TRUE(service.Query(30).ok());
  // Idempotent at the same watermark.
  EXPECT_EQ(service.EvictBefore(watermark), 0u);
}

TEST(WindowServiceTest, RelearnFiresFromStalenessWithoutManualRefresh) {
  QueryServiceConfig config;
  config.num_threads = 2;
  // Synchronous maintenance so the trigger is deterministic; learning is
  // on (sample_size > 0) so the relearn actually resamples.
  config.ingest.background_rebuild = false;
  config.ingest.rebuild_delta_fraction = 0.0;  // isolate relearning
  config.ingest.relearn_staleness_threshold = 0.25;
  QueryService service(BuildMiner(40, /*sample_size=*/5), config);

  const uint64_t priors_v0 = service.miner().priors_version();

  // Pin a pre-drift answer at its committed version.
  auto before = service.Query(20);
  ASSERT_TRUE(before.ok());
  std::vector<uint64_t> masks_before;
  for (const Subspace& s : before->outlying_subspaces()) {
    masks_before.push_back(s.mask());
  }
  std::sort(masks_before.begin(), masks_before.end());

  // Drift: 6 appends + 6 deletes over 40 live rows = staleness 12/40 >
  // 0.25. No manual RefreshLearning anywhere in this test.
  Rng rng(14);
  ASSERT_TRUE(service.AppendBatch(RandomRows(6, &rng)).ok());
  EXPECT_EQ(service.Stats().relearns_completed, 0u);  // 6/46 < 0.25
  const std::vector<data::PointId> doomed = {0, 1, 2, 3, 4, 5};
  ASSERT_TRUE(service.DeleteRows(doomed).ok());
  service.WaitForRebuilds();

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_GE(stats.relearns_completed, 1u);
  EXPECT_GT(service.miner().priors_version(), priors_v0);
  EXPECT_FALSE(service.miner().learning_stale());
  EXPECT_LT(stats.learning_staleness,
            config.ingest.relearn_staleness_threshold);

  // Priors only steer search order: the same surviving point still gets
  // the same answer set after the relearn.
  auto after = service.Query(20);
  ASSERT_TRUE(after.ok());
  std::vector<uint64_t> masks_after;
  for (const Subspace& s : after->outlying_subspaces()) {
    masks_after.push_back(s.mask());
  }
  std::sort(masks_after.begin(), masks_after.end());
  EXPECT_EQ(masks_before, masks_after);
}

TEST(WindowServiceTest, ChurnFromDeletesTriggersRebuild) {
  QueryServiceConfig config;
  config.ingest.background_rebuild = false;
  config.ingest.rebuild_delta_fraction = 0.10;
  config.ingest.min_delta_rows = 4;
  QueryService service(BuildMiner(40), config);

  // No appends at all: tombstones alone push churn over the policy
  // (8 unsealed tombstones / 32 live = 0.25 > 0.10).
  std::vector<data::PointId> doomed;
  for (data::PointId id = 0; id < 8; ++id) doomed.push_back(id);
  ASSERT_TRUE(service.DeleteRows(doomed).ok());
  service.WaitForRebuilds();

  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_GE(stats.rebuilds_completed, 1u);
  // The rebuild folded the tombstones physically.
  EXPECT_EQ(service.miner().dataset().unsealed_tombstones(), 0u);
  EXPECT_DOUBLE_EQ(stats.churn_fraction, 0.0);
  EXPECT_TRUE(service.Query(0).status().IsNotFound());
  EXPECT_TRUE(service.Query(8).ok());
}

}  // namespace
}  // namespace hos::service
