#include "src/service/query_service.h"

#include <gtest/gtest.h>

#include <numeric>
#include <utility>
#include <vector>

#include "src/data/generator.h"

namespace hos::service {
namespace {

data::GeneratedData MakePlanted(uint64_t seed, size_t n = 300, int d = 6) {
  Rng rng(seed);
  data::SubspaceOutlierSpec spec;
  spec.num_points = n;
  spec.num_dims = d;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  EXPECT_TRUE(generated.ok());
  return std::move(generated).value();
}

core::HosMiner BuildMiner(uint64_t seed,
                          core::IndexKind index = core::IndexKind::kXTree) {
  auto generated = MakePlanted(seed);
  core::HosMinerConfig config;
  config.index = index;
  auto miner = core::HosMiner::Build(std::move(generated.dataset), config);
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

/// The answer-bearing parts of a SearchOutcome must match bit-for-bit;
/// work counters and wall-clock are allowed to differ (the cache changes
/// how much work happens, never what is answered).
void ExpectSameAnswer(const core::QueryResult& a, const core::QueryResult& b,
                      size_t query_index) {
  SCOPED_TRACE("query " + std::to_string(query_index));
  EXPECT_EQ(a.outcome.num_dims, b.outcome.num_dims);
  EXPECT_EQ(a.outcome.threshold, b.outcome.threshold);
  EXPECT_EQ(a.outcome.minimal_outlying_subspaces,
            b.outcome.minimal_outlying_subspaces);
  EXPECT_EQ(a.outcome.evaluated_outliers, b.outcome.evaluated_outliers);
  EXPECT_EQ(a.outcome.outlier_fraction, b.outcome.outlier_fraction);
}

TEST(QueryServiceTest, SingleQueryMatchesMiner) {
  core::HosMiner miner = BuildMiner(11);
  auto expected = miner.Query(0);
  ASSERT_TRUE(expected.ok());

  QueryService service(BuildMiner(11), {});
  auto actual = service.Query(0);
  ASSERT_TRUE(actual.ok());
  ExpectSameAnswer(*actual, *expected, 0);
}

// The tentpole acceptance test: a batch spread over 8 worker threads with
// the shared OD cache on must return exactly what a serial Query loop
// returns, in the same order.
TEST(QueryServiceTest, EightThreadBatchIdenticalToSerial) {
  core::HosMiner serial_miner = BuildMiner(12);
  std::vector<data::PointId> ids(serial_miner.dataset().size());
  std::iota(ids.begin(), ids.end(), 0);

  std::vector<core::QueryResult> expected;
  for (data::PointId id : ids) {
    auto r = serial_miner.Query(id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(r).value());
  }

  QueryServiceConfig config;
  config.num_threads = 8;
  config.enable_od_cache = true;
  QueryService service(BuildMiner(12), config);

  auto batch = service.QueryBatch(ids);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectSameAnswer((*batch)[i], expected[i], i);
  }
}

// Inter-query (worker pool) and intra-query (shared search pool)
// parallelism composed: every in-flight query fans its lattice frontier
// across the same dedicated search pool, and the answers must still be
// exactly the serial ones. This is the shape the TSan CI job leans on —
// concurrent queries issuing concurrent frontier waves against one engine
// and one OD cache.
TEST(QueryServiceTest, ParallelFrontierBatchIdenticalToSerial) {
  core::HosMiner serial_miner = BuildMiner(19);
  std::vector<data::PointId> ids(120);
  std::iota(ids.begin(), ids.end(), 0);

  std::vector<core::QueryResult> expected;
  for (data::PointId id : ids) {
    auto r = serial_miner.Query(id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(r).value());
  }

  QueryServiceConfig config;
  config.num_threads = 4;
  config.search_threads = 4;
  config.enable_od_cache = true;
  QueryService service(BuildMiner(19), config);

  auto batch = service.QueryBatch(ids);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectSameAnswer((*batch)[i], expected[i], i);
  }
}

TEST(QueryServiceTest, CacheOffBatchAlsoIdenticalToSerial) {
  core::HosMiner serial_miner = BuildMiner(13);
  std::vector<data::PointId> ids(100);
  std::iota(ids.begin(), ids.end(), 0);

  QueryServiceConfig config;
  config.num_threads = 8;
  config.enable_od_cache = false;
  QueryService service(BuildMiner(13), config);
  EXPECT_EQ(service.cache(), nullptr);

  auto batch = service.QueryBatch(ids);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto r = serial_miner.Query(ids[i]);
    ASSERT_TRUE(r.ok());
    ExpectSameAnswer((*batch)[i], *r, i);
  }
}

TEST(QueryServiceTest, RepeatedBatchHitsTheCache) {
  QueryServiceConfig config;
  config.num_threads = 4;
  QueryService service(BuildMiner(14), config);

  std::vector<data::PointId> ids(50);
  std::iota(ids.begin(), ids.end(), 0);

  auto first = service.QueryBatch(ids);
  ASSERT_TRUE(first.ok());
  const uint64_t hits_after_first = service.cache()->hits();

  auto second = service.QueryBatch(ids);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(service.cache()->hits(), hits_after_first);

  for (size_t i = 0; i < ids.size(); ++i) {
    ExpectSameAnswer((*second)[i], (*first)[i], i);
  }

  auto stats = service.Stats();
  EXPECT_EQ(stats.queries_served, 100u);
  EXPECT_EQ(stats.batches_served, 2u);
  EXPECT_GT(stats.cache_hit_rate, 0.0);
  EXPECT_GT(stats.p50_latency_seconds, 0.0);
  EXPECT_GE(stats.p99_latency_seconds, stats.p50_latency_seconds);
}

TEST(QueryServiceTest, QueryAsyncDeliversResult) {
  QueryService service(BuildMiner(15), {});
  auto expected = service.miner().Query(3);
  ASSERT_TRUE(expected.ok());

  auto future = service.QueryAsync(3);
  auto actual = future.get();
  ASSERT_TRUE(actual.ok());
  ExpectSameAnswer(*actual, *expected, 3);
}

TEST(QueryServiceTest, BatchPropagatesFirstErrorInIdOrder) {
  QueryService service(BuildMiner(16), {});
  const data::PointId n =
      static_cast<data::PointId>(service.miner().dataset().size());
  std::vector<data::PointId> ids = {0, 1, n + 5, 2, n + 9};
  auto batch = service.QueryBatch(ids);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsOutOfRange());
}

TEST(QueryServiceTest, WorksWithLinearScanBackend) {
  QueryServiceConfig config;
  config.num_threads = 8;
  QueryService service(BuildMiner(17, core::IndexKind::kLinearScan), config);

  core::HosMiner serial = BuildMiner(17, core::IndexKind::kLinearScan);
  std::vector<data::PointId> ids = {0, 5, 10, 15, 20, 25, 30, 35};
  auto batch = service.QueryBatch(ids);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto r = serial.Query(ids[i]);
    ASSERT_TRUE(r.ok());
    ExpectSameAnswer((*batch)[i], *r, i);
  }
}

TEST(QueryServiceTest, StatsJsonIsWellFormedEnough) {
  QueryService service(BuildMiner(18), {});
  (void)service.Query(0);
  std::string json = service.Stats().ToJson();
  EXPECT_NE(json.find("\"queries_served\": 1"), std::string::npos);
  EXPECT_NE(json.find("p99_latency_seconds"), std::string::npos);
}

}  // namespace
}  // namespace hos::service
