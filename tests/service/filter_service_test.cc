// The pre-filter's serving-layer wiring: QueryServiceConfig::filter_mode
// reaches every query, a conservative service answers exactly like an
// unfiltered one, and the filter observability surface
// (service_filter_bound_decisions / service_filter_risky_decisions /
// service_last_bound_gap) fills from the per-query counters.

#include <gtest/gtest.h>

#include <vector>

#include "src/data/generator.h"
#include "src/service/query_service.h"

namespace hos::service {
namespace {

constexpr int kDims = 5;

core::HosMiner BuildMiner() {
  Rng rng(33);
  data::Dataset dataset = data::GenerateUniform(60, kDims, &rng);
  core::HosMinerConfig config;
  config.k = 3;
  config.threshold = 0.8;
  config.normalization = data::NormalizationKind::kNone;
  config.sample_size = 0;
  config.index = core::IndexKind::kVaFile;
  auto miner = core::HosMiner::Build(std::move(dataset), config);
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

std::vector<uint64_t> AnswerMasks(const core::QueryResult& result) {
  std::vector<uint64_t> masks;
  for (const Subspace& s : result.outlying_subspaces()) {
    masks.push_back(s.mask());
  }
  return masks;
}

TEST(FilterServiceTest, ConservativeServiceAnswersExactlyAndCountsDecisions) {
  QueryServiceConfig off_config;
  off_config.num_threads = 2;
  QueryService off_service(BuildMiner(), off_config);

  QueryServiceConfig cons_config;
  cons_config.num_threads = 2;
  cons_config.filter_mode = filter::FilterMode::kConservative;
  QueryService cons_service(BuildMiner(), cons_config);

  for (data::PointId id = 0; id < 24; ++id) {
    auto off = off_service.Query(id);
    auto cons = cons_service.Query(id);
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    ASSERT_TRUE(cons.ok()) << cons.status().ToString();
    EXPECT_EQ(AnswerMasks(*cons), AnswerMasks(*off)) << "id " << id;
  }

  const ServiceStatsSnapshot off_stats = off_service.Stats();
  EXPECT_EQ(off_stats.filter_bound_decisions, 0u);
  EXPECT_EQ(off_stats.filter_risky_decisions, 0u);
  EXPECT_EQ(off_stats.last_bound_gap, 0.0);

  const ServiceStatsSnapshot cons_stats = cons_service.Stats();
  // The filter fired (the config knob reached the search), but took no
  // risks and never wrote the gap gauge.
  EXPECT_GT(cons_stats.filter_bound_decisions, 0u);
  EXPECT_EQ(cons_stats.filter_risky_decisions, 0u);
  EXPECT_EQ(cons_stats.last_bound_gap, 0.0);
  // The sum identity, aggregated: filtered exact work + decisions ==
  // unfiltered exact work over the identical query stream.
  EXPECT_EQ(cons_stats.od_evaluations + cons_stats.filter_bound_decisions,
            off_stats.od_evaluations);

  // The new keys are part of the stable snapshot JSON surface.
  const std::string json = cons_stats.ToJson();
  EXPECT_NE(json.find("\"filter_bound_decisions\""), std::string::npos);
  EXPECT_NE(json.find("\"filter_risky_decisions\""), std::string::npos);
  EXPECT_NE(json.find("\"last_bound_gap\""), std::string::npos);
}

TEST(FilterServiceTest, SpeculativeServiceReportsItsRisk) {
  QueryServiceConfig config;
  config.num_threads = 2;
  config.filter_mode = filter::FilterMode::kSpeculative;
  QueryService service(BuildMiner(), config);

  uint64_t risky = 0;
  for (data::PointId id = 0; id < 24; ++id) {
    auto result = service.Query(id);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    risky += result->outcome.counters.risky_decisions;
  }
  const ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.filter_risky_decisions, risky);
  // The gauge is written iff some query actually took a risk.
  EXPECT_EQ(stats.last_bound_gap > 0.0, risky > 0);
}

}  // namespace
}  // namespace hos::service
