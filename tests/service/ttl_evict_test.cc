// QueryService::EvictOlderThan — the wall-clock TTL convenience over
// EvictBefore. The service samples (monotonic time, dataset version) at
// construction and at every append commit; EvictOlderThan(seconds) evicts
// exactly the rows whose committing sample is older than the horizon.
// Granularity is the append batch: a row younger than `seconds` is never
// evicted, even when the rest of its window is.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "src/data/generator.h"
#include "src/service/query_service.h"

namespace hos::service {
namespace {

constexpr int kDims = 5;

core::HosMiner BuildMiner(size_t rows) {
  Rng rng(33);
  data::Dataset dataset = data::GenerateUniform(rows, kDims, &rng);
  core::HosMinerConfig config;
  config.k = 3;
  config.threshold = 0.8;
  config.normalization = data::NormalizationKind::kNone;
  config.sample_size = 0;
  config.index = core::IndexKind::kXTree;
  auto miner = core::HosMiner::Build(std::move(dataset), config);
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

std::vector<std::vector<double>> RandomRows(size_t n, Rng* rng) {
  std::vector<std::vector<double>> rows(n, std::vector<double>(kDims));
  for (auto& row : rows) {
    for (double& cell : row) cell = rng->Uniform();
  }
  return rows;
}

TEST(TtlEvictTest, EvictsOnlyBatchesWhollyOlderThanTheHorizon) {
  QueryServiceConfig config;
  config.ingest.rebuild_delta_fraction = 0.0;  // isolate the TTL path
  QueryService service(BuildMiner(30), config);

  // Nothing is older than a generous horizon yet: no-op, nothing evicted.
  EXPECT_EQ(service.EvictOlderThan(30.0), 0u);
  EXPECT_EQ(service.Stats().rows_evicted, 0u);

  // Age the build-time rows past a short horizon, then append a fresh
  // batch. The horizon must split them: the 30 initial rows go, the 10
  // freshly appended survive (their commit sample is younger).
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Rng rng(4);
  ASSERT_TRUE(service.AppendBatch(RandomRows(10, &rng)).ok());
  EXPECT_EQ(service.EvictOlderThan(0.1), 30u);

  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.rows_evicted, 30u);
  EXPECT_EQ(stats.live_rows, 10u);
  EXPECT_TRUE(service.Query(0).status().IsNotFound());
  EXPECT_TRUE(service.Query(29).status().IsNotFound());
  EXPECT_TRUE(service.Query(30).ok());

  // Idempotent while no sample ages past the horizon.
  EXPECT_EQ(service.EvictOlderThan(0.1), 0u);

  // Once the append batch itself ages out, it goes too — the history kept
  // its sample across the earlier pruning.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(service.EvictOlderThan(0.1), 10u);
  stats = service.Stats();
  EXPECT_EQ(stats.live_rows, 0u);
  EXPECT_EQ(stats.rows_evicted, 40u);
  EXPECT_TRUE(service.Query(30).status().IsNotFound());

  // An empty window stays a clean no-op.
  EXPECT_EQ(service.EvictOlderThan(0.0), 0u);
}

TEST(TtlEvictTest, HugeHorizonNeverEvictsFreshRows) {
  QueryServiceConfig config;
  config.ingest.rebuild_delta_fraction = 0.0;
  QueryService service(BuildMiner(20), config);
  Rng rng(9);
  ASSERT_TRUE(service.AppendBatch(RandomRows(5, &rng)).ok());

  EXPECT_EQ(service.EvictOlderThan(3600.0), 0u);
  EXPECT_EQ(service.Stats().live_rows, 25u);
  EXPECT_TRUE(service.Query(0).ok());
}

}  // namespace
}  // namespace hos::service
