// Service-level suite for fused multi-query execution: QueryBatch with
// batch fusion on must return exactly what the historical one-task-per-id
// path (batch_fusion_width <= 1) and a serial per-point Query loop return;
// the fused path's metrics (batched_queries, batch_fused_evaluations, the
// batch-size histogram) must account for the fused blocks; error slots
// surface the first error in id order; and — the TSan case — concurrent
// fused batches racing appends, cache stores and each other must stay
// exact under the epoch-lock discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "src/data/generator.h"
#include "src/service/query_service.h"

namespace hos::service {
namespace {

data::GeneratedData MakePlanted(uint64_t seed, size_t n = 260, int d = 6) {
  Rng rng(seed);
  data::SubspaceOutlierSpec spec;
  spec.num_points = n;
  spec.num_dims = d;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  EXPECT_TRUE(generated.ok());
  return std::move(generated).value();
}

core::HosMiner BuildMiner(uint64_t seed) {
  auto generated = MakePlanted(seed);
  auto miner = core::HosMiner::Build(std::move(generated.dataset), {});
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

void ExpectSameAnswer(const core::QueryResult& a, const core::QueryResult& b,
                      size_t query_index) {
  SCOPED_TRACE("query " + std::to_string(query_index));
  EXPECT_EQ(a.outcome.minimal_outlying_subspaces,
            b.outcome.minimal_outlying_subspaces);
  EXPECT_EQ(a.outcome.evaluated_outliers, b.outcome.evaluated_outliers);
  EXPECT_EQ(a.outcome.outlier_fraction, b.outcome.outlier_fraction);
  EXPECT_EQ(a.dataset_version, b.dataset_version);
}

// The core service equivalence: fused blocks (several widths, including
// one that does not divide the batch) versus the width<=1 historical path
// versus a serial Query loop. Cache off so even the od_evaluations
// counters must line up with the serial loop.
TEST(BatchServiceTest, FusedBatchIdenticalToUnfusedAndSerial) {
  core::HosMiner serial_miner = BuildMiner(21);
  std::vector<data::PointId> ids(90);
  std::iota(ids.begin(), ids.end(), 0);

  std::vector<core::QueryResult> expected;
  for (data::PointId id : ids) {
    auto r = serial_miner.Query(id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(r).value());
  }

  for (int width : {0, 1, 4, 7, 16, 128}) {
    SCOPED_TRACE("batch_fusion_width=" + std::to_string(width));
    QueryServiceConfig config;
    config.num_threads = 4;
    config.enable_od_cache = false;
    config.batch_fusion_width = width;
    QueryService service(BuildMiner(21), config);

    auto batch = service.QueryBatch(ids);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ExpectSameAnswer((*batch)[i], expected[i], i);
      EXPECT_EQ((*batch)[i].outcome.counters.od_evaluations,
                expected[i].outcome.counters.od_evaluations)
          << "query " << i;
    }

    const ServiceStatsSnapshot stats = service.Stats();
    EXPECT_EQ(stats.queries_served, ids.size());
    EXPECT_EQ(stats.batches_served, 1u);
    if (width > 1) {
      // Every point went through a fused block, and the fused evaluations
      // account for all the search work (cache off: nothing was shared).
      EXPECT_EQ(stats.batched_queries, ids.size());
      EXPECT_EQ(stats.batch_fused_evaluations, stats.od_evaluations);
    } else {
      EXPECT_EQ(stats.batched_queries, 0u);
      EXPECT_EQ(stats.batch_fused_evaluations, 0u);
    }
  }
}

// With the shared OD cache on, fused batch-mates may warm the cache for
// each other — work counters legitimately drop — but the answers must stay
// exactly the serial ones.
TEST(BatchServiceTest, FusedBatchWithCacheAnswersExactly) {
  core::HosMiner serial_miner = BuildMiner(22);
  std::vector<data::PointId> ids(serial_miner.dataset().size());
  std::iota(ids.begin(), ids.end(), 0);

  std::vector<core::QueryResult> expected;
  for (data::PointId id : ids) {
    auto r = serial_miner.Query(id);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(r).value());
  }

  QueryServiceConfig config;
  config.num_threads = 8;
  config.enable_od_cache = true;
  config.batch_fusion_width = 16;
  QueryService service(BuildMiner(22), config);

  auto batch = service.QueryBatch(ids);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ExpectSameAnswer((*batch)[i], expected[i], i);
  }
  EXPECT_EQ(service.Stats().batched_queries, ids.size());
}

TEST(BatchServiceTest, FirstErrorInIdOrderWins) {
  QueryServiceConfig config;
  config.batch_fusion_width = 4;
  QueryService service(BuildMiner(23), config);

  // Two invalid ids in different fused blocks; the lower slot's error is
  // the one reported, exactly as the unfused path promises.
  const std::vector<data::PointId> ids = {0, 1, 999999, 2, 3, 4, 888888};
  auto batch = service.QueryBatch(ids);
  EXPECT_TRUE(batch.status().IsOutOfRange()) << batch.status().ToString();
}

TEST(BatchServiceTest, TracedFusedBatchSharesOneSpanTree) {
  QueryServiceConfig config;
  config.batch_fusion_width = 8;
  config.observability.trace_queries = true;
  QueryService service(BuildMiner(24), config);

  const std::vector<data::PointId> ids = {0, 1, 2, 3, 4};
  auto batch = service.QueryBatch(ids);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->empty());
  // One shared trace per block, rooted at the "batch" span.
  ASSERT_NE((*batch)[0].trace, nullptr);
  for (const auto& result : *batch) {
    EXPECT_EQ(result.trace, (*batch)[0].trace);
  }
  EXPECT_NE((*batch)[0].trace->Find("batch"), nullptr);
  EXPECT_NE((*batch)[0].trace->Find("batch-dynamic"), nullptr);
}

// The TSan case: fused batches from several client threads race appends
// (epoch writers), the shared OD cache and each other. Answers must be
// internally consistent — every result in one batch carries one of the
// versions that existed during the batch — and the service must stay
// exact: re-querying any id serially at the final version agrees with a
// fresh serial query.
TEST(BatchServiceTest, ConcurrentFusedBatchesRacingAppendsStayExact) {
  QueryServiceConfig config;
  config.num_threads = 4;
  config.enable_od_cache = true;
  config.batch_fusion_width = 8;
  QueryService service(BuildMiner(25), config);
  const size_t base_rows = 100;

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Rng rng(77);
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<std::vector<double>> rows;
      for (int r = 0; r < 4; ++r) {
        std::vector<double> row;
        for (int dim = 0; dim < 6; ++dim) row.push_back(rng.Uniform());
        rows.push_back(std::move(row));
      }
      auto version = service.AppendBatch(rows);
      ASSERT_TRUE(version.ok()) << version.status().ToString();
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::vector<data::PointId> ids;
      for (data::PointId id = 0; id < base_rows; ++id) {
        ids.push_back((id + static_cast<data::PointId>(t)) % base_rows);
      }
      for (int round = 0; round < 5; ++round) {
        auto batch = service.QueryBatch(ids);
        ASSERT_TRUE(batch.ok()) << batch.status().ToString();
        ASSERT_EQ(batch->size(), ids.size());
        for (const core::QueryResult& result : *batch) {
          // Results are full answers at a real committed version.
          EXPECT_GT(result.outcome.num_dims, 0);
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(service.Stats().batched_queries, 3u * 5u * base_rows);
}

}  // namespace
}  // namespace hos::service
