// Serving-layer semantics of streaming ingest: append visibility, the
// version-keyed OD cache (a cached value computed before an append can
// never answer a query issued after it), the rebuild policy, and the
// ingest counters in ServiceStats.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/data/generator.h"
#include "src/service/query_service.h"

namespace hos::service {
namespace {

constexpr int kDims = 5;
constexpr size_t kInitialRows = 100;

std::vector<std::vector<double>> RandomRows(size_t n, Rng* rng) {
  std::vector<std::vector<double>> rows(n, std::vector<double>(kDims));
  for (auto& row : rows) {
    for (double& cell : row) cell = rng->Uniform();
  }
  return rows;
}

core::HosMinerConfig MinerConfig() {
  core::HosMinerConfig config;
  config.k = 3;
  config.threshold = 0.8;
  config.normalization = data::NormalizationKind::kNone;
  config.sample_size = 0;
  return config;
}

core::HosMiner BuildMiner(uint64_t seed,
                          const std::vector<std::vector<double>>& extra = {}) {
  Rng rng(seed);
  data::Dataset dataset = data::GenerateUniform(kInitialRows, kDims, &rng);
  if (!extra.empty()) {
    EXPECT_TRUE(dataset.AppendRows(extra).ok());
  }
  auto miner = core::HosMiner::Build(std::move(dataset), MinerConfig());
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

void ExpectSameAnswer(const core::QueryResult& a, const core::QueryResult& b) {
  EXPECT_EQ(a.outcome.minimal_outlying_subspaces,
            b.outcome.minimal_outlying_subspaces);
  EXPECT_EQ(a.outcome.evaluated_outliers, b.outcome.evaluated_outliers);
  EXPECT_EQ(a.outcome.outlier_fraction, b.outcome.outlier_fraction);
}

// The version-keyed cache acceptance property at the service level: warm
// the cache, append (which changes every OD), query again — the answers
// must match a from-scratch build on the grown data, which they cannot if
// any pre-append cached OD were served.
TEST(IngestServiceTest, CacheNeverServesPreAppendValues) {
  QueryServiceConfig config;
  config.num_threads = 2;
  config.ingest.rebuild_delta_fraction = 0.0;  // isolate the cache effect
  QueryService service(BuildMiner(5), config);

  const std::vector<data::PointId> ids = {0, 1, 2, 3, 4, 5, 6, 7};
  auto before = service.QueryBatch(ids);
  ASSERT_TRUE(before.ok());
  // Repeat to verify the cache is actually hit at a stable version.
  auto before_again = service.QueryBatch(ids);
  ASSERT_TRUE(before_again.ok());
  EXPECT_GT(service.Stats().cache_hits, 0u);

  Rng rng(123);
  const auto delta = RandomRows(40, &rng);
  auto version = service.AppendBatch(delta);
  ASSERT_TRUE(version.ok());

  auto after = service.QueryBatch(ids);
  ASSERT_TRUE(after.ok());

  // Reference: an uncached, from-scratch system over the grown dataset.
  core::HosMiner reference = BuildMiner(5, delta);
  for (size_t i = 0; i < ids.size(); ++i) {
    auto want = reference.Query(ids[i]);
    ASSERT_TRUE(want.ok());
    SCOPED_TRACE("query " + std::to_string(ids[i]));
    ExpectSameAnswer((*after)[i], *want);
    EXPECT_EQ((*after)[i].dataset_version, *version);
  }
}

TEST(IngestServiceTest, SynchronousRebuildFoldsDeltaAndCounts) {
  QueryServiceConfig config;
  config.num_threads = 2;
  config.ingest.min_delta_rows = 8;
  config.ingest.rebuild_delta_fraction = 0.10;
  config.ingest.background_rebuild = false;  // rebuild inside AppendBatch
  QueryService service(BuildMiner(9), config);

  Rng rng(7);
  // Small batch: below min_delta_rows, no rebuild.
  ASSERT_TRUE(service.AppendBatch(RandomRows(4, &rng)).ok());
  ServiceStatsSnapshot stats = service.Stats();
  EXPECT_EQ(stats.rebuilds_completed, 0u);
  EXPECT_EQ(stats.delta_rows, 4u);

  // Crossing both thresholds rebuilds synchronously: delta folded.
  ASSERT_TRUE(service.AppendBatch(RandomRows(16, &rng)).ok());
  stats = service.Stats();
  EXPECT_EQ(stats.rebuilds_completed, 1u);
  EXPECT_EQ(stats.delta_rows, 0u);
  EXPECT_EQ(stats.rows_ingested, 20u);
  EXPECT_EQ(stats.append_batches, 2u);
  EXPECT_GE(stats.last_rebuild_pause_seconds, 0.0);

  EXPECT_EQ(service.miner().dataset().size(), kInitialRows + 20);
  auto result = service.Query(3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset_version, stats.dataset_version);
}

TEST(IngestServiceTest, AppendRejectsMalformedRowsAtomically) {
  QueryServiceConfig config;
  config.num_threads = 1;
  QueryService service(BuildMiner(13), config);
  const uint64_t v0 = service.Stats().dataset_version;

  std::vector<std::vector<double>> rows = {
      {0.1, 0.2, 0.3, 0.4, 0.5},
      {0.1, 0.2}};  // wrong width
  auto version = service.AppendBatch(rows);
  EXPECT_FALSE(version.ok());
  EXPECT_TRUE(version.status().IsInvalidArgument());
  // Nothing committed: version and size unchanged.
  EXPECT_EQ(service.Stats().dataset_version, v0);
  EXPECT_EQ(service.miner().dataset().size(), kInitialRows);
  EXPECT_EQ(service.Stats().rows_ingested, 0u);
}

TEST(IngestServiceTest, StatsJsonCarriesIngestFields) {
  QueryServiceConfig config;
  config.ingest.rebuild_delta_fraction = 0.0;
  QueryService service(BuildMiner(17), config);
  Rng rng(1);
  ASSERT_TRUE(service.AppendBatch(RandomRows(3, &rng)).ok());
  const std::string json = service.Stats().ToJson();
  EXPECT_NE(json.find("\"rows_ingested\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"append_batches\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dataset_version\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"delta_rows\": 3"), std::string::npos) << json;
}

}  // namespace
}  // namespace hos::service
