#include <gtest/gtest.h>

#include "src/core/hos_miner.h"
#include "src/core/result_json.h"
#include "src/data/generator.h"

namespace hos::core {
namespace {

data::GeneratedData MakePlanted(uint64_t seed) {
  Rng rng(seed);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 300;
  spec.num_dims = 6;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  EXPECT_TRUE(generated.ok());
  return std::move(generated).value();
}

TEST(QueryAllTest, MatchesIndividualQueries) {
  auto generated = MakePlanted(1);
  const data::PointId planted = generated.outliers[0].id;
  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());

  std::vector<data::PointId> ids = {0, 1, planted};
  auto batch = miner->QueryAll(ids);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 3u);
  for (size_t i = 0; i < ids.size(); ++i) {
    auto single = miner->Query(ids[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[i].outlying_subspaces(),
              single->outlying_subspaces());
  }
}

TEST(QueryAllTest, PropagatesErrors) {
  auto generated = MakePlanted(2);
  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());
  auto batch = miner->QueryAll({0, 999999});
  EXPECT_TRUE(batch.status().IsOutOfRange());
}

TEST(ScreenOutliersTest, ScreenAgreesWithPerPointSearch) {
  auto generated = MakePlanted(3);
  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());

  auto screened = miner->ScreenOutliers();
  std::vector<bool> is_screened(miner->dataset().size(), false);
  for (const auto& s : screened) {
    is_screened[s.id] = true;
    EXPECT_GE(s.full_space_od, miner->threshold());
  }
  // Monotonicity: screened <=> non-empty answer set. Verify on a sample.
  for (data::PointId id = 0; id < 30; ++id) {
    auto result = miner->Query(id);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->is_outlier_anywhere(), is_screened[id]) << "id " << id;
  }
  // The planted point must be screened in.
  EXPECT_TRUE(is_screened[generated.outliers[0].id]);
  // Descending order by OD.
  for (size_t i = 1; i < screened.size(); ++i) {
    EXPECT_GE(screened[i - 1].full_space_od, screened[i].full_space_od);
  }
}

TEST(TopOutliersTest, SizeAndOrder) {
  auto generated = MakePlanted(4);
  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());
  auto top = miner->TopOutliers(5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].full_space_od, top[i].full_space_od);
  }
  EXPECT_TRUE(miner->TopOutliers(0).empty());
  // top_n larger than the dataset clips.
  EXPECT_EQ(miner->TopOutliers(1 << 20).size(), miner->dataset().size());
}

TEST(ResultJsonTest, SubspaceSerialisation) {
  EXPECT_EQ(SubspaceToJson(Subspace::FromOneBased({1, 3})), "[1,3]");
  EXPECT_EQ(SubspaceToJson(Subspace()), "[]");
}

TEST(ResultJsonTest, QueryResultRoundTripsKeyFields) {
  auto generated = MakePlanted(5);
  const data::PointId planted = generated.outliers[0].id;
  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());
  auto result = miner->Query(planted);
  ASSERT_TRUE(result.ok());
  std::string json = QueryResultToJson(*result);
  // Structural sanity: contains the expected keys and the planted subspace.
  EXPECT_NE(json.find("\"is_outlier\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"minimal_outlying_subspaces\":"), std::string::npos);
  EXPECT_NE(json.find("[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"od_evaluations\":"), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ResultJsonTest, LearningReportSerialisation) {
  auto generated = MakePlanted(6);
  HosMinerConfig config;
  config.sample_size = 5;
  auto miner = HosMiner::Build(std::move(generated.dataset), config);
  ASSERT_TRUE(miner.ok());
  std::string json = LearningReportToJson(miner->learning_report());
  EXPECT_NE(json.find("\"sample_ids\":["), std::string::npos);
  EXPECT_NE(json.find("\"p_up\":["), std::string::npos);
  EXPECT_NE(json.find("\"p_down\":["), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace hos::core
