#include "src/core/hos_miner.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"

namespace hos::core {
namespace {

data::GeneratedData MakePlanted(uint64_t seed, size_t n = 400, int d = 6) {
  Rng rng(seed);
  data::SubspaceOutlierSpec spec;
  spec.num_points = n;
  spec.num_dims = d;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  // Push the planted point clearly past the auto threshold (the 95th
  // percentile of full-space OD): OD in the planted subspace ~ k * 0.5.
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  EXPECT_TRUE(generated.ok());
  return std::move(generated).value();
}

TEST(HosMinerBuildTest, RejectsBadInputs) {
  data::Dataset empty(3);
  EXPECT_TRUE(HosMiner::Build(std::move(empty), {}).status()
                  .IsInvalidArgument());

  Rng rng(1);
  data::Dataset small = data::GenerateUniform(10, 3, &rng);
  HosMinerConfig config;
  config.k = 10;  // k >= dataset size
  EXPECT_FALSE(HosMiner::Build(std::move(small), config).ok());

  data::Dataset tiny = data::GenerateUniform(10, 3, &rng);
  config = HosMinerConfig{};
  config.k = 0;
  EXPECT_FALSE(HosMiner::Build(std::move(tiny), config).ok());
}

TEST(HosMinerBuildTest, RejectsTooManyDims) {
  // The hard cap is now lattice::kMaxLatticeDims (58), not the dense
  // backend's 22: d = 23 builds fine (queries auto-select the sparse
  // lattice), d = 59 is rejected with the range in the message.
  const int too_many = lattice::kMaxLatticeDims + 1;
  data::Dataset wide(too_many);
  wide.Append(std::vector<double>(too_many, 0.0));
  auto rejected = HosMiner::Build(std::move(wide), {});
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsInvalidArgument());
  EXPECT_NE(rejected.status().ToString().find(
                "1.." + std::to_string(lattice::kMaxLatticeDims)),
            std::string::npos);
}

TEST(HosMinerBuildTest, AcceptsDimsPastTheDenseCap) {
  // Regression: d = 23 used to be refused outright; with the sparse
  // lattice backend Build succeeds (learning disabled — at this width each
  // sample search is a full sparse lattice walk).
  const int d = lattice::kDenseMaxDims + 1;
  Rng rng(99);
  data::Dataset ds = data::GenerateUniform(40, d, &rng);
  HosMinerConfig config;
  config.k = 3;
  config.threshold = 5.0;
  config.sample_size = 0;
  config.index = IndexKind::kLinearScan;
  auto miner = HosMiner::Build(std::move(ds), config);
  ASSERT_TRUE(miner.ok()) << miner.status().ToString();
  EXPECT_EQ(miner->num_dims(), d);
}

TEST(HosMinerBuildTest, AutoThresholdIsPositive) {
  auto generated = MakePlanted(2);
  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok()) << miner.status().ToString();
  EXPECT_GT(miner->threshold(), 0.0);
  EXPECT_EQ(miner->num_dims(), 6);
  EXPECT_NE(miner->xtree(), nullptr);
}

TEST(HosMinerBuildTest, ExplicitThresholdRespected) {
  auto generated = MakePlanted(3);
  HosMinerConfig config;
  config.threshold = 123.0;
  auto miner = HosMiner::Build(std::move(generated.dataset), config);
  ASSERT_TRUE(miner.ok());
  EXPECT_DOUBLE_EQ(miner->threshold(), 123.0);
}

TEST(HosMinerQueryTest, RecoversPlantedSubspace) {
  auto generated = MakePlanted(4);
  const data::PointId planted = generated.outliers[0].id;
  const Subspace truth = generated.outliers[0].subspace;

  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());
  auto result = miner->Query(planted);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->outlying_subspaces().empty());
  // The planted subspace must be among the minimal answers (typically the
  // only one).
  bool found = false;
  for (const Subspace& s : result->outlying_subspaces()) {
    found |= (s == truth);
  }
  EXPECT_TRUE(found);
}

TEST(HosMinerQueryTest, BackgroundPointIsNotOutlier) {
  auto generated = MakePlanted(5);
  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());
  // Probe several background points; the overwhelming majority must have no
  // outlying subspace (threshold is the 95th percentile, so a few can).
  int outliers = 0;
  for (data::PointId id = 0; id < 20; ++id) {
    auto result = miner->Query(id);
    ASSERT_TRUE(result.ok());
    outliers += result->is_outlier_anywhere();
  }
  EXPECT_LE(outliers, 4);
}

TEST(HosMinerQueryTest, QueryRejectsBadId) {
  auto generated = MakePlanted(6, 100);
  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());
  EXPECT_TRUE(miner->Query(100000).status().IsOutOfRange());
}

TEST(HosMinerQueryTest, ExternalPointQuery) {
  auto generated = MakePlanted(7);
  // Copy the planted point's raw coordinates before Build consumes the
  // dataset (Build normalises internally but QueryPoint takes raw coords —
  // here generator output is already in [0,1], so raw == pre-normalised).
  const data::PointId planted = generated.outliers[0].id;
  std::vector<double> raw = generated.dataset.RowCopy(planted);
  const Subspace truth = generated.outliers[0].subspace;

  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());
  auto result = miner->QueryPoint(raw);
  ASSERT_TRUE(result.ok());
  // The identical point is in the dataset (distance 0 to itself), which
  // lowers OD; it must still be outlying in (a subset of) the planted
  // subspace's closure, since k=5 neighbours dominate.
  ASSERT_TRUE(result->is_outlier_anywhere());
  bool related = false;
  for (const Subspace& s : result->outlying_subspaces()) {
    related |= s.IsSubsetOf(truth) || truth.IsSubsetOf(s);
  }
  EXPECT_TRUE(related);

  EXPECT_TRUE(miner->QueryPoint({1.0}).status().IsInvalidArgument());
}

TEST(HosMinerQueryTest, AllBackendsAgree) {
  auto generated = MakePlanted(8, 300, 5);
  const data::PointId planted = generated.outliers[0].id;

  HosMinerConfig base_config;
  base_config.threshold = 1.0;
  base_config.sample_size = 0;

  std::vector<Subspace> reference;
  for (IndexKind index :
       {IndexKind::kXTree, IndexKind::kVaFile, IndexKind::kLinearScan}) {
    HosMinerConfig config = base_config;
    config.index = index;
    data::Dataset copy = generated.dataset;
    auto miner = HosMiner::Build(std::move(copy), config);
    ASSERT_TRUE(miner.ok());
    auto result = miner->Query(planted);
    ASSERT_TRUE(result.ok());
    if (reference.empty()) {
      reference = result->outlying_subspaces();
      ASSERT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(result->outlying_subspaces(), reference)
          << "backend " << static_cast<int>(index);
    }
  }
}

TEST(HosMinerQueryTest, LearningReducesOrMatchesWork) {
  auto generated = MakePlanted(9, 500, 8);
  const data::PointId planted = generated.outliers[0].id;

  HosMinerConfig no_learning;
  no_learning.sample_size = 0;
  no_learning.threshold = 1.0;
  HosMinerConfig with_learning = no_learning;
  with_learning.sample_size = 15;

  data::Dataset copy = generated.dataset;
  auto a = HosMiner::Build(std::move(generated.dataset), no_learning);
  auto b = HosMiner::Build(std::move(copy), with_learning);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ra = a->Query(planted);
  auto rb = b->Query(planted);
  ASSERT_TRUE(ra.ok() && rb.ok());
  // Identical answers regardless of priors.
  EXPECT_EQ(ra->outlying_subspaces(), rb->outlying_subspaces());
  // Learned priors were actually produced.
  EXPECT_EQ(b->learning_report().sample_ids.size(), 15u);
}

TEST(HosMinerQueryTest, CountersPopulated) {
  auto generated = MakePlanted(10, 200, 5);
  auto miner = HosMiner::Build(std::move(generated.dataset), {});
  ASSERT_TRUE(miner.ok());
  auto result = miner->Query(0);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->outcome.counters.od_evaluations, 0u);
  EXPECT_GT(result->outcome.counters.distance_computations, 0u);
  EXPECT_GT(result->outcome.counters.steps, 0u);
  EXPECT_GE(result->outcome.counters.elapsed_seconds, 0.0);
}

TEST(HosMinerConfigTest, ZScoreNormalizationWorks) {
  auto generated = MakePlanted(11, 300, 5);
  const data::PointId planted = generated.outliers[0].id;
  HosMinerConfig config;
  config.normalization = data::NormalizationKind::kZScore;
  auto miner = HosMiner::Build(std::move(generated.dataset), config);
  ASSERT_TRUE(miner.ok());
  auto result = miner->Query(planted);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->is_outlier_anywhere());
}

TEST(HosMinerConfigTest, L1MetricWorks) {
  auto generated = MakePlanted(12, 300, 5);
  const data::PointId planted = generated.outliers[0].id;
  HosMinerConfig config;
  config.metric = knn::MetricKind::kL1;
  auto miner = HosMiner::Build(std::move(generated.dataset), config);
  ASSERT_TRUE(miner.ok());
  auto result = miner->Query(planted);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->is_outlier_anywhere());
}

TEST(HosMinerConfigTest, InsertionBuildWorks) {
  auto generated = MakePlanted(13, 200, 4);
  HosMinerConfig config;
  config.bulk_load = false;
  auto miner = HosMiner::Build(std::move(generated.dataset), config);
  ASSERT_TRUE(miner.ok());
  ASSERT_NE(miner->xtree(), nullptr);
  EXPECT_TRUE(miner->xtree()->CheckInvariants().ok());
}

}  // namespace
}  // namespace hos::core
