#include "src/core/od_profile.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/knn/linear_scan.h"

namespace hos::core {
namespace {

TEST(OdProfileTest, RejectsTooManyDims) {
  Rng rng(1);
  data::Dataset ds = data::GenerateUniform(50, 4, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  auto row = ds.Row(0);
  search::OdEvaluator od(engine, row, 3, data::PointId{0});
  EXPECT_TRUE(ComputeOdProfile(&od, 17).status().IsInvalidArgument());
  EXPECT_TRUE(ComputeOdProfile(&od, 0).status().IsInvalidArgument());
}

TEST(OdProfileTest, LevelExtremesAreMonotoneAcrossLevels) {
  Rng rng(2);
  data::Dataset ds = data::GenerateUniform(150, 6, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  auto row = ds.Row(5);
  search::OdEvaluator od(engine, row, 4, data::PointId{5});
  auto profile = ComputeOdProfile(&od, 6);
  ASSERT_TRUE(profile.ok());
  // By OD monotonicity the per-level max and min are non-decreasing in m:
  // every level-m subspace extends some (m-1)-subspace.
  for (int m = 2; m <= 6; ++m) {
    EXPECT_GE(profile->levels[m].max_od + 1e-12,
              profile->levels[m - 1].max_od);
    EXPECT_GE(profile->levels[m].min_od + 1e-12,
              profile->levels[m - 1].min_od);
  }
  // Level d has exactly one subspace: extremes coincide.
  EXPECT_DOUBLE_EQ(profile->levels[6].min_od, profile->levels[6].max_od);
  EXPECT_EQ(profile->levels[6].argmax, Subspace::Full(6));
}

TEST(OdProfileTest, PlantedDimensionsDominate) {
  Rng rng(3);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 400;
  spec.num_dims = 6;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());
  const data::PointId planted = generated->outliers[0].id;
  knn::LinearScanKnn engine(generated->dataset, knn::MetricKind::kL2);
  auto row = generated->dataset.Row(planted);
  search::OdEvaluator od(engine, row, 5, planted);
  auto profile = ComputeOdProfile(&od, 6);
  ASSERT_TRUE(profile.ok());

  // The most deviant subspace at level 2 is exactly the planted one.
  EXPECT_EQ(profile->levels[2].argmax, Subspace::FromOneBased({1, 2}));
  // Dimensions 1 and 2 (0-based 0 and 1) collect the most argmax votes.
  auto dominant = profile->DominantDimensions();
  ASSERT_GE(dominant.size(), 2u);
  EXPECT_TRUE((dominant[0] == 0 && dominant[1] == 1) ||
              (dominant[0] == 1 && dominant[1] == 0));
}

TEST(OdProfileTest, VotesSumMatchesLevels) {
  Rng rng(4);
  data::Dataset ds = data::GenerateUniform(100, 5, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  auto row = ds.Row(0);
  search::OdEvaluator od(engine, row, 3, data::PointId{0});
  auto profile = ComputeOdProfile(&od, 5);
  ASSERT_TRUE(profile.ok());
  // Each level m contributes exactly m votes (its argmax has m dims).
  int total = 0;
  for (int v : profile->dimension_votes) total += v;
  EXPECT_EQ(total, 1 + 2 + 3 + 4 + 5);
}

}  // namespace
}  // namespace hos::core
