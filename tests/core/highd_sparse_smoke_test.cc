// High-dimensional smoke test (tier-1): a complete d = 32 query through
// HosMiner::Query on the sparse lattice backend. The dense backend cannot
// even allocate its state here (2^32 bytes per query); the sparse store
// only ever materialises the frontier the search touches.
//
// The dataset is built so the search stays in the frontier band the sparse
// backend is designed for: a very tight cluster plus one point displaced
// in every dimension. For that point every singleton subspace is outlying
// (and by monotonicity so is everything else), so whichever levels TSF
// ranks first, the search only ever evaluates the boundary band — the
// full space and/or the 32 singletons — and one propagation prunes the
// remaining ~2^32 subspaces. For a cluster point the full space itself is
// non-outlying, so downward pruning decides the whole lattice at once.
// Learning is disabled (each sample would cost a full lattice search) and
// the threshold is explicit.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/hos_miner.h"
#include "src/data/dataset.h"

namespace hos::core {
namespace {

constexpr int kDims = 32;

data::Dataset MakeHighDimDataset() {
  data::Dataset ds(kDims);
  // 120 points in a very tight cluster around 0.2 (deterministic jitter of
  // 1% of the eventual normalised range, so even the *full-space* OD of a
  // cluster point stays far below the threshold), plus one outlier at 1.0
  // in every dimension.
  for (int i = 0; i < 120; ++i) {
    std::vector<double> row(kDims);
    for (int j = 0; j < kDims; ++j) {
      row[j] = 0.2 + 0.008 * (((i * 31 + j * 17) % 10) / 10.0);
    }
    ds.Append(row);
  }
  ds.Append(std::vector<double>(kDims, 1.0));
  return ds;
}

HosMinerConfig HighDimConfig() {
  HosMinerConfig config;
  config.k = 4;
  // Cluster full-space OD <= k * sqrt(d) * jitter ~= 0.23; outlier
  // singleton OD ~= k * 0.99 ~= 3.9. T = 1 separates them with margin.
  config.threshold = 1.0;
  config.sample_size = 0;  // no learning: flat priors
  config.index = IndexKind::kLinearScan;
  return config;
}

TEST(HighDimSparseSmokeTest, D32QueryCompletesOnTheSparseBackend) {
  const data::PointId outlier_id = 120;
  auto miner = HosMiner::Build(MakeHighDimDataset(), HighDimConfig());
  ASSERT_TRUE(miner.ok()) << miner.status().ToString();
  EXPECT_EQ(miner->num_dims(), kDims);

  auto result = miner->Query(outlier_id);  // QueryOptions default: kAuto
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every singleton is outlying, so the minimal answer is the 32
  // singletons and the whole lattice is outlying.
  ASSERT_EQ(result->outlying_subspaces().size(), 32u);
  for (int dim = 0; dim < kDims; ++dim) {
    EXPECT_EQ(result->outlying_subspaces()[dim].mask(), uint64_t{1} << dim);
  }
  // The search may only ever touch the boundary band (full space +
  // singletons); everything else must come from upward pruning, and the
  // whole 2^32 - 1 lattice must be accounted for.
  const auto& counters = result->outcome.counters;
  EXPECT_LE(counters.od_evaluations, 64u);
  EXPECT_EQ(counters.pruned_downward, 0u);
  EXPECT_EQ(counters.od_evaluations + counters.pruned_upward +
                counters.pruned_downward,
            (uint64_t{1} << kDims) - 1);
  EXPECT_TRUE(result->is_outlier_anywhere());

  // A cluster point is not an outlier anywhere: its full-space OD is below
  // T, so once level 32 is evaluated (TSF ranks it first — DSF(32) is the
  // largest saving factor on a fresh flat-prior lattice) downward pruning
  // decides everything else at once.
  auto inlier = miner->Query(0);
  ASSERT_TRUE(inlier.ok()) << inlier.status().ToString();
  EXPECT_FALSE(inlier->is_outlier_anywhere());
  EXPECT_LE(inlier->outcome.counters.od_evaluations, 64u);
  EXPECT_EQ(inlier->outcome.counters.od_evaluations +
                inlier->outcome.counters.pruned_upward +
                inlier->outcome.counters.pruned_downward,
            (uint64_t{1} << kDims) - 1);
}

TEST(HighDimSparseSmokeTest, ForcedDenseBackendIsRejected) {
  auto miner = HosMiner::Build(MakeHighDimDataset(), HighDimConfig());
  ASSERT_TRUE(miner.ok()) << miner.status().ToString();
  QueryOptions options;
  options.lattice_backend = lattice::LatticeBackend::kDense;
  auto result = miner->Query(120, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hos::core
