#include "src/core/threshold.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/knn/linear_scan.h"

namespace hos::core {
namespace {

TEST(ThresholdTest, RejectsEmptyDataset) {
  data::Dataset ds(2);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  Rng rng(1);
  EXPECT_TRUE(EstimateThreshold(ds, engine, {}, &rng)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ThresholdTest, RejectsBadOptions) {
  Rng rng(1);
  data::Dataset ds = data::GenerateUniform(20, 2, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  ThresholdOptions options;
  options.percentile = 0.0;
  EXPECT_TRUE(
      EstimateThreshold(ds, engine, options, &rng).status().IsInvalidArgument());
  options.percentile = 1.5;
  EXPECT_FALSE(EstimateThreshold(ds, engine, options, &rng).ok());
  options.percentile = 0.9;
  options.sample_size = 0;
  EXPECT_FALSE(EstimateThreshold(ds, engine, options, &rng).ok());
}

TEST(ThresholdTest, PercentileOrdering) {
  Rng rng(2);
  data::Dataset ds = data::GenerateUniform(300, 4, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  ThresholdOptions options;
  options.sample_size = 300;
  options.percentile = 0.5;
  auto median = EstimateThreshold(ds, engine, options, &rng);
  options.percentile = 0.95;
  auto high = EstimateThreshold(ds, engine, options, &rng);
  ASSERT_TRUE(median.ok() && high.ok());
  EXPECT_GT(*high, *median);
  EXPECT_GT(*median, 0.0);
}

TEST(ThresholdTest, PercentileOneIsMaximum) {
  Rng rng(3);
  data::Dataset ds = data::GenerateUniform(50, 3, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  ThresholdOptions options;
  options.sample_size = 50;
  options.percentile = 1.0;
  auto t = EstimateThreshold(ds, engine, options, &rng);
  ASSERT_TRUE(t.ok());
  // No sampled OD exceeds the 100th percentile.
  const Subspace full = Subspace::Full(3);
  for (data::PointId i = 0; i < ds.size(); ++i) {
    knn::KnnQuery q;
    auto row = ds.Row(i);
    q.point = row;
    q.subspace = full;
    q.k = options.k;
    q.exclude = i;
    EXPECT_LE(knn::OutlyingDegree(engine, q), *t + 1e-12);
  }
}

TEST(ThresholdTest, PlantedOutlierExceedsEstimatedThreshold) {
  Rng rng(4);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 400;
  spec.num_dims = 5;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());
  knn::LinearScanKnn engine(generated->dataset, knn::MetricKind::kL2);
  ThresholdOptions options;
  options.percentile = 0.95;
  options.sample_size = 200;
  auto t = EstimateThreshold(generated->dataset, engine, options, &rng);
  ASSERT_TRUE(t.ok());
  // The planted point's OD in its subspace should clear the threshold.
  const data::PointId planted = generated->outliers[0].id;
  knn::KnnQuery q;
  auto row = generated->dataset.Row(planted);
  q.point = row;
  q.subspace = generated->outliers[0].subspace;
  q.k = options.k;
  q.exclude = planted;
  EXPECT_GT(knn::OutlyingDegree(engine, q), *t);
}

}  // namespace
}  // namespace hos::core
