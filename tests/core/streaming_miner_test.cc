// HosMiner streaming-ingest API: Append semantics (normalization with the
// Build-time fit, version bookkeeping, lazy learner invalidation), the
// two-phase rebuild, and error paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/hos_miner.h"
#include "src/data/generator.h"

namespace hos::core {
namespace {

constexpr int kDims = 5;

HosMiner BuildMiner(uint64_t seed, size_t rows = 120,
                    data::NormalizationKind normalization =
                        data::NormalizationKind::kMinMax) {
  Rng rng(seed);
  data::Dataset dataset = data::GenerateUniform(rows, kDims, &rng);
  HosMinerConfig config;
  config.k = 3;
  config.threshold = 0.8;
  config.normalization = normalization;
  auto miner = HosMiner::Build(std::move(dataset), config);
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

TEST(StreamingMinerTest, AppendReturnsMonotonicVersionsAndMarksLearning) {
  HosMiner miner = BuildMiner(1);
  const uint64_t v0 = miner.version();
  EXPECT_FALSE(miner.learning_stale());
  EXPECT_EQ(miner.delta_rows(), 0u);

  auto v1 = miner.Append({{0.5, 0.5, 0.5, 0.5, 0.5}});
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, v0 + 1);
  EXPECT_TRUE(miner.learning_stale());
  EXPECT_EQ(miner.delta_rows(), 1u);

  auto v2 = miner.Append({{0.1, 0.2, 0.3, 0.4, 0.5},
                          {0.9, 0.8, 0.7, 0.6, 0.5}});
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, v0 + 3);
  EXPECT_EQ(miner.delta_rows(), 3u);
  EXPECT_GT(miner.delta_fraction(), 0.0);

  // Empty append: version unchanged, no-op.
  auto v3 = miner.Append({});
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(*v3, *v2);

  miner.RefreshLearning();
  EXPECT_FALSE(miner.learning_stale());
}

TEST(StreamingMinerTest, AppendNormalizesWithTheBuildTimeFit) {
  // Min-max normalization fitted at Build maps the raw range seen then to
  // [0, 1]; an appended raw point at the fitted maximum must land at 1.0
  // in every dimension — i.e. the transform is the *old* fit, not a refit.
  Rng rng(2);
  data::Dataset dataset(kDims);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> row(kDims);
    for (double& cell : row) cell = rng.Uniform(0.0, 2.0);
    dataset.Append(row);
  }
  std::vector<double> raw_max(kDims);
  for (int d = 0; d < kDims; ++d) {
    raw_max[d] = data::ComputeColumnStats(dataset)[d].max;
  }
  HosMinerConfig config;
  config.k = 3;
  config.threshold = 0.8;
  auto miner = HosMiner::Build(std::move(dataset), config);
  ASSERT_TRUE(miner.ok());

  ASSERT_TRUE(miner->Append({raw_max}).ok());
  const data::PointId appended =
      static_cast<data::PointId>(miner->dataset().size() - 1);
  for (int d = 0; d < kDims; ++d) {
    EXPECT_DOUBLE_EQ(miner->dataset().At(appended, d), 1.0) << "dim " << d;
  }
}

TEST(StreamingMinerTest, AppendValidatesRowWidth) {
  HosMiner miner = BuildMiner(3);
  const uint64_t v0 = miner.version();
  auto bad = miner.Append({{1.0, 2.0}});
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(miner.version(), v0);
  EXPECT_FALSE(miner.learning_stale());
}

TEST(StreamingMinerTest, QueriesReportTheVersionTheyRanAt) {
  HosMiner miner = BuildMiner(4);
  auto before = miner.Query(0);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->dataset_version, miner.version());

  ASSERT_TRUE(miner.Append({{0.5, 0.5, 0.5, 0.5, 0.5}}).ok());
  auto after = miner.Query(0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->dataset_version, miner.version());
  EXPECT_EQ(after->dataset_version, before->dataset_version + 1);

  // Appended rows are themselves queryable immediately.
  auto delta_query =
      miner.Query(static_cast<data::PointId>(miner.dataset().size() - 1));
  EXPECT_TRUE(delta_query.ok());
}

TEST(StreamingMinerTest, TwoPhaseRebuildFoldsTheDelta) {
  HosMiner miner = BuildMiner(5);
  ASSERT_TRUE(miner.Append({{0.4, 0.4, 0.4, 0.4, 0.4},
                            {0.6, 0.6, 0.6, 0.6, 0.6}}).ok());
  EXPECT_EQ(miner.delta_rows(), 2u);
  EXPECT_LT(miner.soa_view().num_points(), miner.dataset().size());

  auto artifacts = miner.PrepareRebuild();
  ASSERT_TRUE(artifacts.ok());
  EXPECT_EQ(artifacts->rows, miner.dataset().size());

  // Queries between prepare and commit still work (prepare is read-only).
  ASSERT_TRUE(miner.Query(0).ok());

  miner.CommitRebuild(std::move(artifacts).value());
  EXPECT_EQ(miner.delta_rows(), 0u);
  EXPECT_EQ(miner.soa_view().num_points(), miner.dataset().size());
  ASSERT_TRUE(miner.Query(0).ok());
}

TEST(StreamingMinerTest, RebuildKeepsThresholdAndAnswers) {
  HosMiner miner = BuildMiner(6);
  const double threshold = miner.threshold();
  ASSERT_TRUE(miner.Append({{0.3, 0.7, 0.3, 0.7, 0.3}}).ok());

  auto before = miner.Query(7);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(miner.Rebuild().ok());
  EXPECT_EQ(miner.threshold(), threshold);

  auto after = miner.Query(7);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->outcome.minimal_outlying_subspaces,
            after->outcome.minimal_outlying_subspaces);
  EXPECT_EQ(before->outcome.outlier_fraction, after->outcome.outlier_fraction);
}

TEST(StreamingMinerTest, RebuildWorksForEveryIndexKind) {
  for (IndexKind index : {IndexKind::kLinearScan, IndexKind::kXTree,
                          IndexKind::kVaFile}) {
    SCOPED_TRACE(static_cast<int>(index));
    Rng rng(7);
    data::Dataset dataset = data::GenerateUniform(80, kDims, &rng);
    HosMinerConfig config;
    config.k = 3;
    config.threshold = 0.8;
    config.index = index;
    auto miner = HosMiner::Build(std::move(dataset), config);
    ASSERT_TRUE(miner.ok());
    ASSERT_TRUE(miner->Append({{0.2, 0.4, 0.6, 0.8, 1.0}}).ok());
    ASSERT_TRUE(miner->Rebuild().ok());
    EXPECT_EQ(miner->delta_rows(), 0u);
    EXPECT_TRUE(miner->Query(0).ok());
    if (index == IndexKind::kXTree) {
      ASSERT_NE(miner->xtree(), nullptr);
      EXPECT_TRUE(miner->xtree()->CheckInvariants().ok());
    }
  }
}

TEST(StreamingMinerTest, DeleteEvictFeedTheStalenessClock) {
  HosMiner miner = BuildMiner(8, /*rows=*/100);
  EXPECT_EQ(miner.priors_version(), miner.version());
  EXPECT_DOUBLE_EQ(miner.learning_staleness(), 0.0);
  EXPECT_EQ(miner.live_rows(), 100u);

  const std::vector<data::PointId> doomed = {4, 9};
  auto version = miner.Delete(doomed);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_TRUE(miner.learning_stale());
  EXPECT_EQ(miner.live_rows(), 98u);
  // 2 mutations over 98 live rows.
  EXPECT_DOUBLE_EQ(miner.learning_staleness(), 2.0 / 98.0);

  EXPECT_EQ(miner.EvictOldest(3), 3u);
  EXPECT_EQ(miner.live_rows(), 95u);
  EXPECT_DOUBLE_EQ(miner.learning_staleness(), 5.0 / 95.0);
  EXPECT_GT(miner.churn_fraction(), 0.0);

  auto dead = miner.Query(4);
  EXPECT_TRUE(dead.status().IsNotFound()) << dead.status().ToString();
  auto live = miner.Query(50);
  EXPECT_TRUE(live.ok()) << live.status().ToString();
}

TEST(StreamingMinerTest, TwoPhaseLearningCommitsAtomicallyAndResetsClock) {
  HosMiner miner = BuildMiner(9, /*rows=*/100);
  ASSERT_TRUE(miner.Delete(std::vector<data::PointId>{0, 1, 2}).ok());
  ASSERT_TRUE(miner.Append({{0.5, 0.5, 0.5, 0.5, 0.5}}).ok());
  ASSERT_TRUE(miner.learning_stale());
  const uint64_t priors_v0 = miner.priors_version();

  // Prepare is read-only: queries keep answering with the old priors and
  // the staleness clock keeps ticking.
  HosMiner::LearningArtifacts artifacts = miner.PrepareLearning();
  EXPECT_EQ(artifacts.version, miner.version());
  ASSERT_TRUE(miner.Query(50).ok());
  EXPECT_TRUE(miner.learning_stale());
  EXPECT_EQ(miner.priors_version(), priors_v0);

  auto before = miner.Query(60);
  ASSERT_TRUE(before.ok());

  miner.CommitLearning(std::move(artifacts));
  EXPECT_FALSE(miner.learning_stale());
  EXPECT_GT(miner.priors_version(), priors_v0);
  EXPECT_DOUBLE_EQ(miner.learning_staleness(), 0.0);

  // Priors only steer the search order — never the answer set.
  auto after = miner.Query(60);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->outcome.minimal_outlying_subspaces,
            after->outcome.minimal_outlying_subspaces);

  // The refreshed sample contains live rows only.
  for (data::PointId id : miner.learning_report().sample_ids) {
    EXPECT_TRUE(miner.dataset().IsLive(id)) << "sampled dead row " << id;
  }
}

TEST(StreamingMinerTest, RebuildFoldsTombstonesAndReclaimsChunks) {
  // Enough rows that the first storage chunk can become wholly dead.
  HosMiner miner = BuildMiner(10, /*rows=*/600,
                              data::NormalizationKind::kNone);
  EXPECT_EQ(miner.EvictOldest(data::Dataset::kChunkRows),
            data::Dataset::kChunkRows);
  EXPECT_GT(miner.dataset().unsealed_tombstones(), 0u);

  ASSERT_TRUE(miner.Rebuild().ok());
  EXPECT_EQ(miner.dataset().unsealed_tombstones(), 0u);
  EXPECT_DOUBLE_EQ(miner.churn_fraction(), 0.0);
  // The wholly dead first chunk was reclaimed at commit.
  EXPECT_LT(miner.dataset().allocated_chunks(),
            (600 + data::Dataset::kChunkRows - 1) / data::Dataset::kChunkRows);

  // Evicted rows stay NotFound after the physical fold; survivors answer.
  EXPECT_TRUE(miner.Query(0).status().IsNotFound());
  EXPECT_TRUE(
      miner.Query(static_cast<data::PointId>(data::Dataset::kChunkRows)).ok());
}

}  // namespace
}  // namespace hos::core
