// End-to-end integration tests exercising the whole Fig.-2 pipeline
// (generator → normaliser → X-tree → learner → dynamic search → filter) on
// multi-structure datasets, plus cross-module consistency checks.

#include <gtest/gtest.h>

#include <set>

#include "src/baseline/evolutionary.h"
#include "src/core/hos_miner.h"
#include "src/data/csv.h"
#include "src/data/generator.h"
#include "src/eval/metrics.h"

namespace hos {
namespace {

TEST(EndToEndTest, MultiplePlantedSubspacesAllRecovered) {
  Rng rng(100);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 600;
  spec.num_dims = 8;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2}),
                            Subspace::FromOneBased({3, 4, 5}),
                            Subspace::FromOneBased({7, 8})};
  spec.outliers_per_subspace = 2;
  // d=8 background pushes the auto threshold up (full-space OD grows with
  // dimensionality), so plant with a larger displacement to clear it.
  spec.displacement = 0.65;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());

  core::HosMinerConfig config;
  config.seed = 100;
  auto miner = core::HosMiner::Build(std::move(generated->dataset), config);
  ASSERT_TRUE(miner.ok()) << miner.status().ToString();

  int exact_hits = 0;
  for (const auto& planted : generated->outliers) {
    auto result = miner->Query(planted.id);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->is_outlier_anywhere())
        << "planted " << planted.subspace.ToString();
    for (const Subspace& s : result->outlying_subspaces()) {
      exact_hits += (s == planted.subspace);
    }
  }
  // At least 5 of the 6 planted points recover their exact subspace.
  EXPECT_GE(exact_hits, 5);
}

TEST(EndToEndTest, CsvRoundTripPreservesAnswers) {
  Rng rng(101);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 250;
  spec.num_dims = 5;
  spec.planted_subspaces = {Subspace::FromOneBased({2, 3})};
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());
  const data::PointId planted = generated->outliers[0].id;

  // Serialise to CSV text and parse back — the demo's data-exchange path.
  std::string csv = data::ToCsv(generated->dataset);
  auto reparsed = data::ParseCsv(csv);
  ASSERT_TRUE(reparsed.ok());

  core::HosMinerConfig config;
  config.threshold = 1.5;
  config.sample_size = 5;
  data::Dataset original = generated->dataset;
  auto miner_a = core::HosMiner::Build(std::move(original), config);
  auto miner_b = core::HosMiner::Build(std::move(reparsed).value(), config);
  ASSERT_TRUE(miner_a.ok() && miner_b.ok());
  auto ra = miner_a->Query(planted);
  auto rb = miner_b->Query(planted);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->outlying_subspaces(), rb->outlying_subspaces());
}

TEST(EndToEndTest, AnswerSetIsUpwardClosedAndMinimal) {
  Rng rng(102);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 300;
  spec.num_dims = 6;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());
  const data::PointId planted = generated->outliers[0].id;

  auto miner = core::HosMiner::Build(std::move(generated->dataset), {});
  ASSERT_TRUE(miner.ok());
  auto result = miner->Query(planted);
  ASSERT_TRUE(result.ok());
  const auto& minimal = result->outlying_subspaces();
  ASSERT_FALSE(minimal.empty());

  // Minimality: an antichain.
  for (size_t i = 0; i < minimal.size(); ++i) {
    for (size_t j = 0; j < minimal.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(minimal[i].IsSubsetOf(minimal[j]));
      }
    }
  }
  // Upward closure is consistent with the paper's Property 2: verify OD of
  // a few supersets directly clears the threshold.
  search::OdEvaluator od(miner->engine(), miner->dataset().Row(planted),
                         miner->config().k, planted);
  const Subspace seed = minimal[0];
  for (const Subspace& parent : ImmediateSupersets(seed, 6)) {
    EXPECT_GE(od.Evaluate(parent) + 1e-12, miner->threshold());
  }
  // ... and immediate subsets of a minimal subspace fall below it.
  for (const Subspace& child : ImmediateSubsets(seed)) {
    EXPECT_LT(od.Evaluate(child), miner->threshold());
  }
}

TEST(EndToEndTest, HosMinerBeatsEvolutionaryAtSubspaceRecovery) {
  // The comparative study of the demo plan (§4, part 3), in miniature:
  // HOS-Miner answers the per-point question directly; the evolutionary
  // method reports globally sparse projections, which need not contain the
  // planted point's subspace.
  Rng rng(103);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 500;
  spec.num_dims = 6;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());
  const data::PointId planted = generated->outliers[0].id;
  const Subspace truth = generated->outliers[0].subspace;

  data::Dataset copy = generated->dataset;
  auto miner = core::HosMiner::Build(std::move(generated->dataset), {});
  ASSERT_TRUE(miner.ok());
  auto result = miner->Query(planted);
  ASSERT_TRUE(result.ok());
  auto hos_metrics = eval::CompareSubspaceSets(result->outlying_subspaces(),
                                               {truth});

  baseline::EvolutionaryOptions evo_options;
  evo_options.target_dims = 2;
  evo_options.population_size = 50;
  evo_options.max_generations = 40;
  auto evo = baseline::EvolutionaryOutlierSearch::Create(copy, evo_options);
  ASSERT_TRUE(evo.ok());
  Rng evo_rng(103);
  auto projections = evo->Run(&evo_rng);
  // Evolutionary prediction for the planted point: subspaces of sparse
  // projections that actually contain the point.
  std::vector<Subspace> evo_predicted;
  for (const auto& projection : projections) {
    auto inside = evo->PointsIn(projection);
    if (std::find(inside.begin(), inside.end(), planted) != inside.end()) {
      evo_predicted.push_back(projection.subspace());
    }
  }
  auto evo_metrics = eval::CompareSubspaceSets(evo_predicted, {truth});

  EXPECT_GE(hos_metrics.recall, evo_metrics.recall);
  EXPECT_DOUBLE_EQ(hos_metrics.recall, 1.0);
}

TEST(EndToEndTest, ShiftOutliersYieldSingletonAnswers) {
  Rng rng(104);
  data::ShiftOutlierSpec spec;
  spec.num_points = 300;
  spec.num_dims = 5;
  spec.planted_subspaces = {Subspace::FromOneBased({3})};
  spec.shift = 3.0;
  auto generated = data::GenerateShiftOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());
  const data::PointId planted = generated->outliers[0].id;

  core::HosMinerConfig config;
  config.seed = 104;
  auto miner = core::HosMiner::Build(std::move(generated->dataset), config);
  ASSERT_TRUE(miner.ok());
  auto result = miner->Query(planted);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->outlying_subspaces().empty());
  // The minimal outlying subspace of an out-of-range shift is the shifted
  // singleton itself.
  EXPECT_EQ(result->outlying_subspaces()[0], Subspace::FromOneBased({3}));
}

TEST(EndToEndTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    Rng rng(105);
    data::SubspaceOutlierSpec spec;
    spec.num_points = 200;
    spec.num_dims = 5;
    spec.planted_subspaces = {Subspace::FromOneBased({4, 5})};
    spec.displacement = 0.5;
    auto generated = data::GenerateSubspaceOutliers(spec, &rng);
    EXPECT_TRUE(generated.ok());
    core::HosMinerConfig config;
    config.seed = 105;
    auto miner = core::HosMiner::Build(std::move(generated->dataset), config);
    EXPECT_TRUE(miner.ok());
    auto result = miner->Query(generated->outliers[0].id);
    EXPECT_TRUE(result.ok());
    return std::make_pair(miner->threshold(),
                          result->outlying_subspaces());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace hos
