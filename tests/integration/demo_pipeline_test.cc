// Cross-module pipeline tests mirroring the demo flow (paper §4): data in,
// system built on a chosen backend, screening, per-point subspace answers,
// explanation profile, heuristic cross-check, JSON out.

#include <gtest/gtest.h>

#include "src/core/hos_miner.h"
#include "src/core/od_profile.h"
#include "src/core/result_json.h"
#include "src/data/generator.h"
#include "src/search/genetic_search.h"

namespace hos {
namespace {

struct Pipeline {
  data::GeneratedData generated;
  core::HosMiner miner;
};

Result<Pipeline> BuildPipeline(core::IndexKind index, uint64_t seed) {
  Rng rng(seed);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 350;
  spec.num_dims = 7;
  spec.planted_subspaces = {Subspace::FromOneBased({2, 3})};
  spec.displacement = 0.55;
  HOS_ASSIGN_OR_RETURN(data::GeneratedData generated,
                       data::GenerateSubspaceOutliers(spec, &rng));
  core::HosMinerConfig config;
  config.index = index;
  config.seed = seed;
  data::Dataset copy = generated.dataset;
  HOS_ASSIGN_OR_RETURN(core::HosMiner miner,
                       core::HosMiner::Build(std::move(copy), config));
  return Pipeline{std::move(generated), std::move(miner)};
}

class DemoPipelineTest : public ::testing::TestWithParam<core::IndexKind> {};

TEST_P(DemoPipelineTest, ScreenDetailExplainExport) {
  auto pipeline = BuildPipeline(GetParam(), 7);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  core::HosMiner& miner = pipeline->miner;
  const data::PointId planted = pipeline->generated.outliers[0].id;
  const Subspace truth = pipeline->generated.outliers[0].subspace;

  // 1. Screening finds the planted point.
  auto flagged = miner.ScreenOutliers();
  bool planted_flagged = false;
  for (const auto& hit : flagged) planted_flagged |= (hit.id == planted);
  ASSERT_TRUE(planted_flagged);

  // 2. Detailing recovers the planted subspace.
  auto result = miner.Query(planted);
  ASSERT_TRUE(result.ok());
  bool recovered = false;
  for (const Subspace& s : result->outlying_subspaces()) {
    recovered |= (s == truth);
  }
  EXPECT_TRUE(recovered);

  // 3. The explanation profile puts the planted pair on top of level 2 and
  //    votes its dimensions highest.
  search::OdEvaluator od(miner.engine(), miner.dataset().Row(planted),
                         miner.config().k, planted);
  auto profile = core::ComputeOdProfile(&od, miner.num_dims());
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->levels[2].argmax, truth);
  auto dominant = profile->DominantDimensions();
  EXPECT_TRUE((dominant[0] == 1 && dominant[1] == 2) ||
              (dominant[0] == 2 && dominant[1] == 1));

  // 4. The genetic heuristic's answers are a subset of the exact ones.
  search::GeneticSubspaceSearch ga(miner.num_dims());
  Rng ga_rng(7);
  search::OdEvaluator ga_od(miner.engine(), miner.dataset().Row(planted),
                            miner.config().k, planted);
  for (const Subspace& s : ga.Run(&ga_od, miner.threshold(), &ga_rng)) {
    EXPECT_TRUE(result->outcome.IsOutlying(s)) << s.ToString();
  }

  // 5. JSON export is well-formed and carries the verdict.
  std::string json = core::QueryResultToJson(*result);
  EXPECT_NE(json.find("\"is_outlier\":true"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

INSTANTIATE_TEST_SUITE_P(Backends, DemoPipelineTest,
                         ::testing::Values(core::IndexKind::kXTree,
                                           core::IndexKind::kVaFile,
                                           core::IndexKind::kLinearScan),
                         [](const auto& info) {
                           switch (info.param) {
                             case core::IndexKind::kXTree:
                               return "XTree";
                             case core::IndexKind::kVaFile:
                               return "VaFile";
                             default:
                               return "LinearScan";
                           }
                         });

TEST(DemoPipelineTest, BackendsProduceIdenticalScreenSets) {
  auto a = BuildPipeline(core::IndexKind::kXTree, 9);
  auto b = BuildPipeline(core::IndexKind::kVaFile, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  auto fa = a->miner.ScreenOutliers();
  auto fb = b->miner.ScreenOutliers();
  ASSERT_EQ(fa.size(), fb.size());
  for (size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].id, fb[i].id);
    EXPECT_NEAR(fa[i].full_space_od, fb[i].full_space_od, 1e-9);
  }
}

}  // namespace
}  // namespace hos
