// The sliding-window exactness contract, end to end: a miner that appended
// rows, deleted some and evicted others must answer queries bitwise
// identically to a miner freshly built on the surviving rows only — same
// minimal outlying subspaces, same OD values to the last bit — across
// every kNN backend, both lattice stores, and before and after a rebuild
// physically folds the tombstones away. Normalization is off and the
// threshold fixed so both arms operate on the same coordinates and the
// same T (the contract explicitly excludes re-fitting those).
//
// The iDistance cases cover the same contract at the engine level (it is
// the screening backend, not a HosMinerConfig::index option), including
// the k-means-over-live-rows determinism a rebuilt windowed index relies
// on for bitwise-equal partitions.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/core/hos_miner.h"
#include "src/data/dataset.h"
#include "src/data/generator.h"
#include "src/index/idistance.h"
#include "src/knn/knn_engine.h"
#include "tests/testutil/adversarial_gen.h"

namespace hos {
namespace {

constexpr int kDims = 6;
constexpr size_t kInitialRows = 60;
constexpr size_t kAppendedRows = 20;
constexpr int kK = 3;
constexpr double kThreshold = 0.9;

core::HosMinerConfig MinerConfig(core::IndexKind index) {
  core::HosMinerConfig config;
  config.k = kK;
  config.threshold = kThreshold;
  config.normalization = data::NormalizationKind::kNone;
  config.index = index;
  config.sample_size = 4;
  config.seed = 42;
  return config;
}

/// Sorted subspace masks of an outcome's refined answer set.
std::vector<uint64_t> AnswerMasks(const core::QueryResult& result) {
  std::vector<uint64_t> masks;
  for (const Subspace& s : result.outlying_subspaces()) {
    masks.push_back(s.mask());
  }
  std::sort(masks.begin(), masks.end());
  return masks;
}

/// The windowed arm: build on the initial rows, append, delete, evict.
/// Returns the miner; survivor ids (ascending) land in `survivors`.
core::HosMiner BuildWindowedMiner(core::IndexKind index,
                                  std::vector<data::PointId>* survivors) {
  Rng data_rng(5);
  data::Dataset dataset =
      data::GenerateUniform(kInitialRows + kAppendedRows, kDims, &data_rng);
  // Split the generated rows: the tail is appended through the streaming
  // path so it lives in the delta (no rebuild before the queries).
  std::vector<std::vector<double>> tail;
  for (size_t i = kInitialRows; i < dataset.size(); ++i) {
    tail.push_back(dataset.RowCopy(static_cast<data::PointId>(i)));
  }
  data::Dataset initial(kDims);
  for (size_t i = 0; i < kInitialRows; ++i) {
    initial.Append(dataset.Row(static_cast<data::PointId>(i)));
  }

  auto built = core::HosMiner::Build(std::move(initial), MinerConfig(index));
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  core::HosMiner miner = std::move(built).value();
  EXPECT_TRUE(miner.Append(tail).ok());

  // Deletes hit the sealed base and the delta; eviction takes the oldest.
  const std::vector<data::PointId> doomed = {3, 10, 33, 61, 70};
  EXPECT_TRUE(miner.Delete(doomed).ok());
  EXPECT_EQ(miner.EvictOldest(2), 2u);  // rows 0 and 1

  survivors->clear();
  for (data::PointId id = 0;
       id < static_cast<data::PointId>(miner.dataset().size()); ++id) {
    if (miner.dataset().IsLive(id)) survivors->push_back(id);
  }
  EXPECT_EQ(survivors->size(), kInitialRows + kAppendedRows - 7);
  return miner;
}

/// The fresh arm: a miner built from scratch on the survivors only, in the
/// same order (fresh id j corresponds to windowed id survivors[j]).
core::HosMiner BuildFreshMiner(const core::HosMiner& windowed,
                               const std::vector<data::PointId>& survivors,
                               core::IndexKind index) {
  data::Dataset fresh(kDims);
  for (data::PointId id : survivors) {
    fresh.Append(windowed.dataset().Row(id));
  }
  auto built = core::HosMiner::Build(std::move(fresh), MinerConfig(index));
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

void ExpectSameAnswers(const core::HosMiner& windowed,
                       const core::HosMiner& fresh,
                       const std::vector<data::PointId>& survivors,
                       lattice::LatticeBackend backend) {
  core::QueryOptions options;
  options.lattice_backend = backend;
  for (size_t j = 0; j < survivors.size(); ++j) {
    auto w = windowed.Query(survivors[j], options);
    auto f = fresh.Query(static_cast<data::PointId>(j), options);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    EXPECT_EQ(AnswerMasks(*w), AnswerMasks(*f))
        << "answer sets diverge for windowed id " << survivors[j];
    EXPECT_EQ(w->is_outlier_anywhere(), f->is_outlier_anywhere());
  }
}

/// Bitwise OD equality between the arms, in the full space and a few
/// proper subspaces, for every survivor.
void ExpectBitwiseOds(const core::HosMiner& windowed,
                      const core::HosMiner& fresh,
                      const std::vector<data::PointId>& survivors) {
  const std::vector<uint64_t> masks = {
      (uint64_t{1} << kDims) - 1, 0b000001, 0b001010, 0b110101};
  for (size_t j = 0; j < survivors.size(); ++j) {
    for (uint64_t mask : masks) {
      knn::KnnQuery wq;
      wq.point = windowed.dataset().Row(survivors[j]);
      wq.subspace = Subspace(mask);
      wq.k = kK;
      wq.exclude = survivors[j];
      knn::KnnQuery fq = wq;
      fq.point = fresh.dataset().Row(static_cast<data::PointId>(j));
      fq.exclude = static_cast<data::PointId>(j);
      const double wod = knn::OutlyingDegree(windowed.engine(), wq);
      const double fod = knn::OutlyingDegree(fresh.engine(), fq);
      EXPECT_EQ(wod, fod) << "OD diverges bitwise for windowed id "
                          << survivors[j] << " mask " << mask;
    }
  }
}

class WindowDifferentialTest
    : public ::testing::TestWithParam<core::IndexKind> {};

TEST_P(WindowDifferentialTest, WindowedEqualsFreshBuildOnSurvivors) {
  std::vector<data::PointId> survivors;
  core::HosMiner windowed = BuildWindowedMiner(GetParam(), &survivors);
  core::HosMiner fresh = BuildFreshMiner(windowed, survivors, GetParam());

  // Tombstone-filtered serving (delta + tombstones unsealed).
  ExpectBitwiseOds(windowed, fresh, survivors);
  ExpectSameAnswers(windowed, fresh, survivors,
                    lattice::LatticeBackend::kDense);
  ExpectSameAnswers(windowed, fresh, survivors,
                    lattice::LatticeBackend::kSparse);

  // Dead ids answer NotFound (never a stale value, never a crash).
  auto dead = windowed.Query(3);
  EXPECT_TRUE(dead.status().IsNotFound()) << dead.status().ToString();
  auto oob = windowed.Query(
      static_cast<data::PointId>(windowed.dataset().size()));
  EXPECT_TRUE(oob.status().IsOutOfRange());

  // Screening sees only survivors, with bitwise-equal ODs.
  auto ws = windowed.ScreenOutliers();
  auto fs = fresh.ScreenOutliers();
  ASSERT_EQ(ws.size(), fs.size());
  for (size_t i = 0; i < ws.size(); ++i) {
    const auto it =
        std::lower_bound(survivors.begin(), survivors.end(), ws[i].id);
    ASSERT_TRUE(it != survivors.end() && *it == ws[i].id)
        << "screened id " << ws[i].id << " is not a survivor";
    EXPECT_EQ(ws[i].full_space_od, fs[i].full_space_od);
  }

  // After a rebuild physically folds the tombstones, everything above
  // still holds bitwise (and the dead prefix chunk storage is reclaimable
  // without disturbing answers).
  ASSERT_TRUE(windowed.Rebuild().ok());
  EXPECT_EQ(windowed.delta_rows(), 0u);
  EXPECT_EQ(windowed.dataset().unsealed_tombstones(), 0u);
  ExpectBitwiseOds(windowed, fresh, survivors);
  ExpectSameAnswers(windowed, fresh, survivors,
                    lattice::LatticeBackend::kDense);
  EXPECT_TRUE(windowed.Query(3).status().IsNotFound());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, WindowDifferentialTest,
                         ::testing::Values(core::IndexKind::kLinearScan,
                                           core::IndexKind::kXTree,
                                           core::IndexKind::kVaFile),
                         [](const auto& info) {
                           switch (info.param) {
                             case core::IndexKind::kXTree: return "XTree";
                             case core::IndexKind::kVaFile: return "VaFile";
                             default: return "LinearScan";
                           }
                         });

// The windowed-equals-fresh contract on adversarially generated data:
// tombstones land inside near-threshold rings and next to exact duplicates,
// so a backend that mishandles dead rows flips verdicts engineered to sit
// at T ± 3% rather than comfortably away from it.
TEST_P(WindowDifferentialTest, AdversarialWindowedEqualsFresh) {
  testutil::AdversarialSpec spec;
  spec.num_dims = kDims;
  spec.k = kK;
  spec.threshold = kThreshold;
  spec.seed = 31337;
  testutil::AdversarialDataset scenario = testutil::MakeAdversarial(spec);

  core::HosMinerConfig config = MinerConfig(GetParam());
  auto built = core::HosMiner::Build(testutil::ToDataset(scenario), config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  core::HosMiner windowed = std::move(built).value();
  ASSERT_TRUE(windowed.Delete(scenario.tombstones).ok());

  std::vector<data::PointId> survivors;
  for (data::PointId id = 0;
       id < static_cast<data::PointId>(windowed.dataset().size()); ++id) {
    if (windowed.dataset().IsLive(id)) survivors.push_back(id);
  }
  core::HosMiner fresh = BuildFreshMiner(windowed, survivors, GetParam());

  ExpectBitwiseOds(windowed, fresh, survivors);
  ExpectSameAnswers(windowed, fresh, survivors,
                    lattice::LatticeBackend::kDense);
  ExpectSameAnswers(windowed, fresh, survivors,
                    lattice::LatticeBackend::kSparse);

  // And after the tombstones are folded physically.
  ASSERT_TRUE(windowed.Rebuild().ok());
  ExpectBitwiseOds(windowed, fresh, survivors);
  ExpectSameAnswers(windowed, fresh, survivors,
                    lattice::LatticeBackend::kDense);
}

TEST(IDistanceWindowTest, WindowedEqualsFreshBuildOnSurvivors) {
  Rng data_rng(11);
  data::Dataset windowed = data::GenerateUniform(80, kDims, &data_rng);

  // Build over the first 80 rows, then append 20 (delta) and tombstone
  // rows in both the indexed base and the delta.
  Rng build_rng(7);
  auto built = index::IDistance::Build(windowed, knn::MetricKind::kL2,
                                       index::IDistanceConfig{}, &build_rng);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  index::IDistance windowed_index = std::move(built).value();

  Rng extra_rng(13);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> row(kDims);
    for (double& cell : row) cell = extra_rng.Uniform();
    windowed.Append(row);
  }
  const std::vector<data::PointId> doomed = {0, 7, 42, 79, 85, 99};
  ASSERT_TRUE(windowed.DeleteRows(doomed).ok());

  std::vector<data::PointId> survivors;
  for (data::PointId id = 0;
       id < static_cast<data::PointId>(windowed.size()); ++id) {
    if (windowed.IsLive(id)) survivors.push_back(id);
  }
  data::Dataset fresh(kDims);
  for (data::PointId id : survivors) fresh.Append(windowed.Row(id));
  Rng fresh_rng(7);
  auto fresh_built = index::IDistance::Build(
      fresh, knn::MetricKind::kL2, index::IDistanceConfig{}, &fresh_rng);
  ASSERT_TRUE(fresh_built.ok());
  const index::IDistance& fresh_index = fresh_built.value();

  auto expect_same = [&](const index::IDistance& w_index) {
    ASSERT_TRUE(w_index.CheckInvariants().ok());
    Rng query_rng(23);
    for (int q = 0; q < 12; ++q) {
      std::vector<double> point(kDims);
      for (double& cell : point) cell = query_rng.Uniform();
      auto w = w_index.Knn(point, 5);
      auto f = fresh_index.Knn(point, 5);
      ASSERT_EQ(w.size(), f.size());
      for (size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w[i].id, survivors[f[i].id]);
        EXPECT_EQ(w[i].distance, f[i].distance);  // bitwise
      }
      auto wr = w_index.RangeSearch(point, 0.6);
      auto fr = fresh_index.RangeSearch(point, 0.6);
      ASSERT_EQ(wr.size(), fr.size());
      for (size_t i = 0; i < wr.size(); ++i) {
        EXPECT_EQ(wr[i].id, survivors[fr[i].id]);
        EXPECT_EQ(wr[i].distance, fr[i].distance);
      }
    }
    // Self-excluding queries (the ScreenOutliers form), every survivor.
    for (size_t j = 0; j < survivors.size(); ++j) {
      auto w = w_index.Knn(windowed.Row(survivors[j]), kK, survivors[j]);
      auto f = fresh_index.Knn(fresh.Row(static_cast<data::PointId>(j)),
                               kK, static_cast<data::PointId>(j));
      ASSERT_EQ(w.size(), f.size());
      for (size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w[i].id, survivors[f[i].id]);
        EXPECT_EQ(w[i].distance, f[i].distance);
      }
    }
  };

  // Arm 1: tombstones filtered at query time (delta + dead base rows).
  expect_same(windowed_index);

  // Arm 2: rebuild folds the tombstones physically; k-means clusters the
  // live rows in survivor order with identical rng draws, so the rebuilt
  // windowed index and the fresh index have bitwise-equal partitions.
  Rng rebuild_rng(7);
  ASSERT_TRUE(windowed_index.Rebuild(&rebuild_rng).ok());
  ASSERT_EQ(windowed_index.partitions().size(),
            fresh_index.partitions().size());
  for (size_t p = 0; p < windowed_index.partitions().size(); ++p) {
    EXPECT_EQ(windowed_index.partitions()[p].center,
              fresh_index.partitions()[p].center);
    EXPECT_EQ(windowed_index.partitions()[p].radius,
              fresh_index.partitions()[p].radius);
  }
  expect_same(windowed_index);
}

}  // namespace
}  // namespace hos
