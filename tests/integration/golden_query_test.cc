// Golden end-to-end regression: a checked-in CSV (tests/integration/
// testdata/golden.csv) and the exact result_json answer of one
// HosMiner::Query over it (golden_result.json). Any kernel, backend or
// search change that shifts the answer — neighbour sets, OD values, lattice
// traversal order, even the distance-computation tally — fails this test
// loudly instead of drifting silently.
//
// The fixture was produced by GenerateSubspaceOutliers(seed 424242,
// n=80, d=4, planted subspace [1,2], displacement 0.55); the planted
// outlier is row 80. To regenerate after an *intentional* behaviour change,
// run the same query (config below) and overwrite golden_result.json with
// the printed actual JSON, zeroing counters.elapsed_seconds.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/core/hos_miner.h"
#include "src/core/result_json.h"
#include "src/data/csv.h"
#include "src/service/thread_pool.h"

namespace hos {
namespace {

constexpr data::PointId kPlantedId = 80;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(GoldenQueryTest, ResultJsonMatchesCheckedInAnswer) {
  const std::string dir =
      std::string(HOS_SOURCE_DIR) + "/tests/integration/testdata";
  auto dataset = data::ReadCsvFile(dir + "/golden.csv");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  ASSERT_EQ(dataset->size(), 81u);
  ASSERT_EQ(dataset->num_dims(), 4);

  core::HosMinerConfig config;
  config.k = 4;
  config.threshold = 1.1;
  config.seed = 7;
  auto miner = core::HosMiner::Build(std::move(dataset).value(), config);
  ASSERT_TRUE(miner.ok()) << miner.status().ToString();

  auto result = miner->Query(kPlantedId);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Wall-clock is the one nondeterministic field; zero it so the remaining
  // JSON — answers and work counters — must match bit for bit.
  result->outcome.counters.elapsed_seconds = 0.0;

  std::string want = ReadFile(dir + "/golden_result.json");
  // Tolerate a trailing newline in the fixture.
  while (!want.empty() && (want.back() == '\n' || want.back() == '\r')) {
    want.pop_back();
  }
  EXPECT_EQ(core::QueryResultToJson(*result), want)
      << "actual JSON (use to regenerate golden_result.json after an "
         "intentional change):\n"
      << core::QueryResultToJson(*result);
}

// The same query with its lattice frontier fanned out across a 4-thread
// pool must serialise byte-identically to the single-threaded golden
// answer — answers, OD-derived fields AND work counters (same subspaces
// evaluated, same kNN calls, zero speculation), so any scheduling leak
// into the result surfaces as a diff against the same fixture.
TEST(GoldenQueryTest, ParallelSearchMatchesGoldenByteForByte) {
  const std::string dir =
      std::string(HOS_SOURCE_DIR) + "/tests/integration/testdata";
  auto dataset = data::ReadCsvFile(dir + "/golden.csv");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  core::HosMinerConfig config;
  config.k = 4;
  config.threshold = 1.1;
  config.seed = 7;
  auto miner = core::HosMiner::Build(std::move(dataset).value(), config);
  ASSERT_TRUE(miner.ok()) << miner.status().ToString();

  service::ThreadPool search_pool(4);
  core::QueryOptions options;
  options.search_pool = &search_pool;
  options.search_threads = 4;
  auto result = miner->Query(kPlantedId, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  result->outcome.counters.elapsed_seconds = 0.0;

  std::string want = ReadFile(dir + "/golden_result.json");
  while (!want.empty() && (want.back() == '\n' || want.back() == '\r')) {
    want.pop_back();
  }
  EXPECT_EQ(core::QueryResultToJson(*result), want);
}

// The same query on the sparse lattice backend (forced — at d = 4 the
// automatic choice is dense) must also serialise byte-identically:
// storage is an implementation detail, so answers, OD-derived fields AND
// work counters (evaluations, pruning tallies, steps) all match the
// fixture produced by the flat-array backend.
TEST(GoldenQueryTest, SparseLatticeBackendMatchesGoldenByteForByte) {
  const std::string dir =
      std::string(HOS_SOURCE_DIR) + "/tests/integration/testdata";
  auto dataset = data::ReadCsvFile(dir + "/golden.csv");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();

  core::HosMinerConfig config;
  config.k = 4;
  config.threshold = 1.1;
  config.seed = 7;
  auto miner = core::HosMiner::Build(std::move(dataset).value(), config);
  ASSERT_TRUE(miner.ok()) << miner.status().ToString();

  core::QueryOptions options;
  options.lattice_backend = lattice::LatticeBackend::kSparse;
  auto result = miner->Query(kPlantedId, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  result->outcome.counters.elapsed_seconds = 0.0;

  std::string want = ReadFile(dir + "/golden_result.json");
  while (!want.empty() && (want.back() == '\n' || want.back() == '\r')) {
    want.pop_back();
  }
  EXPECT_EQ(core::QueryResultToJson(*result), want);
}

}  // namespace
}  // namespace hos
