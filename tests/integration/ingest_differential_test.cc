// The streaming-ingest acceptance harness: append-then-query must be
// *bitwise identical* to build-from-scratch-then-query, and to
// append-then-rebuild-then-query, for every kNN backend × both lattice
// storage backends.
//
// Why bitwise equality is attainable: an appended row's distance to a query
// point is computed either by the batched kernel (after a rebuild) or by
// the scalar delta scan (before one), and the two are held bit-identical by
// tests/kernels/. The k-smallest selection and OD summation then consume
// the same doubles in the same order, so OD values, the decided lattice,
// the answer sets and the order-independent search counters all match
// exactly. The test pins the knobs that would otherwise legitimately
// differ between the two arms: the threshold is given explicitly (the
// streaming system never re-estimates T), learning is disabled (appends
// invalidate priors lazily; priors steer only search order, but the
// counters compared here are order-sensitive), and normalization is off
// (an append-time system cannot re-fit column scales without changing the
// meaning of already-returned answers).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "src/core/hos_miner.h"
#include "src/data/generator.h"
#include "src/index/idistance.h"
#include "src/knn/knn_engine.h"

namespace hos {
namespace {

constexpr size_t kBaseRows = 180;
constexpr size_t kDeltaRows = 60;
constexpr int kDims = 6;
constexpr double kThreshold = 0.9;

std::vector<std::vector<double>> RowsOf(const data::Dataset& dataset,
                                        size_t begin, size_t end) {
  std::vector<std::vector<double>> rows;
  rows.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    rows.push_back(dataset.RowCopy(static_cast<data::PointId>(i)));
  }
  return rows;
}

/// Background + planted subspace outliers; planted rows land at the end,
/// so the delta contains outliers — the append path must find them.
data::Dataset MakeData(uint64_t seed) {
  Rng rng(seed);
  data::SubspaceOutlierSpec spec;
  spec.num_points = kBaseRows + kDeltaRows;
  spec.num_dims = kDims;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2}),
                           Subspace::FromOneBased({4, 5})};
  spec.outliers_per_subspace = 2;
  spec.displacement = 0.6;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  EXPECT_TRUE(generated.ok()) << generated.status().ToString();
  return std::move(generated)->dataset;
}

core::HosMinerConfig MakeConfig(core::IndexKind index) {
  core::HosMinerConfig config;
  config.index = index;
  config.k = 4;
  config.threshold = kThreshold;  // never re-estimated under streaming
  config.normalization = data::NormalizationKind::kNone;
  config.sample_size = 0;  // flat priors: search order independent of data
  return config;
}

core::HosMiner BuildOn(const std::vector<std::vector<double>>& rows,
                       core::IndexKind index) {
  auto dataset = data::Dataset::FromRows(rows, kDims);
  EXPECT_TRUE(dataset.ok());
  auto miner = core::HosMiner::Build(std::move(dataset).value(),
                                     MakeConfig(index));
  EXPECT_TRUE(miner.ok()) << miner.status().ToString();
  return std::move(miner).value();
}

/// Everything the acceptance criterion names, compared with exact ==:
/// answer sets, per-level fractions (OD-derived doubles), and the
/// order-independent work counters. distance_computations is deliberately
/// excluded for the index backends: it depends on index *shape* (a tree
/// bulk-loaded over n+delta rows prunes differently than one over n rows
/// plus a delta scan), which exactness does not.
void ExpectBitwiseOutcome(const core::QueryResult& streamed,
                          const core::QueryResult& reference,
                          const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(streamed.outcome.num_dims, reference.outcome.num_dims);
  EXPECT_EQ(streamed.outcome.threshold, reference.outcome.threshold);
  EXPECT_EQ(streamed.outcome.minimal_outlying_subspaces,
            reference.outcome.minimal_outlying_subspaces);
  EXPECT_EQ(streamed.outcome.evaluated_outliers,
            reference.outcome.evaluated_outliers);
  ASSERT_EQ(streamed.outcome.outlier_fraction.size(),
            reference.outcome.outlier_fraction.size());
  for (size_t m = 0; m < streamed.outcome.outlier_fraction.size(); ++m) {
    EXPECT_EQ(streamed.outcome.outlier_fraction[m],
              reference.outcome.outlier_fraction[m])
        << "level " << m;
  }
  EXPECT_EQ(streamed.outcome.counters.od_evaluations,
            reference.outcome.counters.od_evaluations);
  EXPECT_EQ(streamed.outcome.counters.pruned_upward,
            reference.outcome.counters.pruned_upward);
  EXPECT_EQ(streamed.outcome.counters.pruned_downward,
            reference.outcome.counters.pruned_downward);
  EXPECT_EQ(streamed.outcome.counters.steps,
            reference.outcome.counters.steps);
  EXPECT_EQ(streamed.outcome.counters.wasted_evaluations,
            reference.outcome.counters.wasted_evaluations);
}

/// OD(p, s) compared bit-for-bit at the engine level over every subspace of
/// the lattice — the raw doubles behind the outcomes above.
void ExpectBitwiseOdValues(const core::HosMiner& streamed,
                           const core::HosMiner& reference,
                           data::PointId id, const std::string& label) {
  SCOPED_TRACE(label);
  for (uint64_t mask = 1; mask < (uint64_t{1} << kDims); ++mask) {
    knn::KnnQuery query;
    query.point = streamed.dataset().Row(id);
    query.subspace = Subspace(mask);
    query.k = streamed.config().k;
    query.exclude = id;
    const double od_streamed = knn::OutlyingDegree(streamed.engine(), query);
    knn::KnnQuery ref_query = query;
    ref_query.point = reference.dataset().Row(id);
    const double od_reference =
        knn::OutlyingDegree(reference.engine(), ref_query);
    ASSERT_EQ(od_streamed, od_reference)
        << "OD diverges at mask " << mask << " for point " << id;
  }
}

using IngestParam = std::tuple<core::IndexKind, lattice::LatticeBackend>;

class IngestDifferentialTest : public ::testing::TestWithParam<IngestParam> {
};

std::string IngestParamName(const ::testing::TestParamInfo<IngestParam>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case core::IndexKind::kLinearScan: name = "LinearScan"; break;
    case core::IndexKind::kXTree: name = "XTree"; break;
    case core::IndexKind::kVaFile: name = "VaFile"; break;
  }
  name += std::get<1>(info.param) == lattice::LatticeBackend::kDense
              ? "Dense"
              : "Sparse";
  return name;
}

TEST_P(IngestDifferentialTest, AppendEqualsRebuildEqualsFreshBuild) {
  const auto [index, backend] = GetParam();
  const data::Dataset all = MakeData(/*seed=*/1234);
  const auto base_rows = RowsOf(all, 0, kBaseRows);
  const auto delta_rows = RowsOf(all, kBaseRows, all.size());
  const auto all_rows = RowsOf(all, 0, all.size());

  // Arm A: build on the base, append the delta, query through the delta
  // scan. Arm B: one fresh build over everything.
  // The generator appends its planted outlier rows after the background,
  // so the delta is kDeltaRows background rows plus the planted outliers.
  const size_t delta_count = all.size() - kBaseRows;
  core::HosMiner streamed = BuildOn(base_rows, index);
  const uint64_t version_before = streamed.version();
  auto appended = streamed.Append(delta_rows);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  EXPECT_EQ(*appended, version_before + delta_count);
  EXPECT_EQ(streamed.delta_rows(), delta_count);

  core::HosMiner reference = BuildOn(all_rows, index);
  ASSERT_EQ(streamed.dataset().size(), reference.dataset().size());

  core::QueryOptions options;
  options.lattice_backend = backend;

  // Probe base rows, background delta rows, and the planted outliers that
  // live in the delta.
  const std::vector<data::PointId> probes = {
      0, 17, static_cast<data::PointId>(kBaseRows - 1),
      static_cast<data::PointId>(kBaseRows + 3),
      static_cast<data::PointId>(all.size() - 1),
      static_cast<data::PointId>(all.size() - 2)};

  for (data::PointId id : probes) {
    ExpectBitwiseOdValues(streamed, reference, id,
                          "append vs fresh, point " + std::to_string(id));
    auto got = streamed.Query(id, options);
    auto want = reference.Query(id, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_EQ(got->dataset_version, streamed.version());
    ExpectBitwiseOutcome(*got, *want,
                         "append vs fresh, point " + std::to_string(id));
  }

  // Arm C: rebuild folds the delta into the index; everything must still
  // match, and now even the index shape is the fresh build's (same
  // factory over the same rows), so distance counters agree too.
  ASSERT_TRUE(streamed.Rebuild().ok());
  EXPECT_EQ(streamed.delta_rows(), 0u);
  for (data::PointId id : probes) {
    ExpectBitwiseOdValues(streamed, reference, id,
                          "rebuild vs fresh, point " + std::to_string(id));
    auto got = streamed.Query(id, options);
    auto want = reference.Query(id, options);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectBitwiseOutcome(*got, *want,
                         "rebuild vs fresh, point " + std::to_string(id));
    EXPECT_EQ(got->outcome.counters.distance_computations,
              want->outcome.counters.distance_computations)
        << "rebuilt index shape should match the fresh build's";
  }

  // Screening (full-space OD over every row, delta included) agrees.
  const auto screened_streamed = streamed.ScreenOutliers();
  const auto screened_reference = reference.ScreenOutliers();
  ASSERT_EQ(screened_streamed.size(), screened_reference.size());
  for (size_t i = 0; i < screened_streamed.size(); ++i) {
    EXPECT_EQ(screened_streamed[i].id, screened_reference[i].id);
    EXPECT_EQ(screened_streamed[i].full_space_od,
              screened_reference[i].full_space_od);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, IngestDifferentialTest,
    ::testing::Combine(::testing::Values(core::IndexKind::kLinearScan,
                                         core::IndexKind::kXTree,
                                         core::IndexKind::kVaFile),
                       ::testing::Values(lattice::LatticeBackend::kDense,
                                         lattice::LatticeBackend::kSparse)),
    IngestParamName);

// The fourth backend: iDistance serves full-space kNN (the screening
// stage), so its append/rebuild equivalence is asserted at the engine
// level — neighbour ids and distances bit-for-bit.
TEST(IngestDifferentialTest, IDistanceAppendAndRebuildMatchFreshBuild) {
  const data::Dataset all = MakeData(/*seed=*/99);
  const auto base_rows = RowsOf(all, 0, kBaseRows);
  const auto delta_rows = RowsOf(all, kBaseRows, all.size());
  const auto all_rows = RowsOf(all, 0, all.size());

  auto streamed_data = data::Dataset::FromRows(base_rows, kDims);
  ASSERT_TRUE(streamed_data.ok());
  data::Dataset streamed_dataset = std::move(streamed_data).value();
  auto reference_data = data::Dataset::FromRows(all_rows, kDims);
  ASSERT_TRUE(reference_data.ok());
  data::Dataset reference_dataset = std::move(reference_data).value();

  index::IDistanceConfig config;
  config.num_partitions = 8;
  Rng rng_a(7);
  auto streamed = index::IDistance::Build(streamed_dataset,
                                          knn::MetricKind::kL2, config,
                                          &rng_a);
  ASSERT_TRUE(streamed.ok());
  Rng rng_b(7);
  auto reference = index::IDistance::Build(reference_dataset,
                                           knn::MetricKind::kL2, config,
                                           &rng_b);
  ASSERT_TRUE(reference.ok());

  ASSERT_TRUE(streamed_dataset.AppendRows(delta_rows).ok());
  EXPECT_EQ(streamed->base_rows(), kBaseRows);

  auto expect_equal_neighbors = [&](const std::string& label) {
    SCOPED_TRACE(label);
    for (data::PointId id : {data::PointId{0}, data::PointId{50},
                             static_cast<data::PointId>(kBaseRows + 1),
                             static_cast<data::PointId>(all.size() - 1)}) {
      for (int k : {1, 4, 9}) {
        const auto got = streamed->Knn(streamed_dataset.Row(id), k, id);
        const auto want = reference->Knn(reference_dataset.Row(id), k, id);
        ASSERT_EQ(got.size(), want.size()) << "k=" << k << " id=" << id;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].id, want[i].id) << "k=" << k << " id=" << id;
          EXPECT_EQ(got[i].distance, want[i].distance)
              << "k=" << k << " id=" << id;
        }
      }
      const auto got_range =
          streamed->RangeSearch(streamed_dataset.Row(id), 0.4);
      const auto want_range =
          reference->RangeSearch(reference_dataset.Row(id), 0.4);
      ASSERT_EQ(got_range.size(), want_range.size()) << "id=" << id;
      for (size_t i = 0; i < got_range.size(); ++i) {
        EXPECT_EQ(got_range[i].id, want_range[i].id);
        EXPECT_EQ(got_range[i].distance, want_range[i].distance);
      }
    }
  };

  expect_equal_neighbors("append (delta scan) vs fresh build");

  // Rebuild with the same seed reproduces the fresh build's partitioning.
  Rng rng_c(7);
  ASSERT_TRUE(streamed->Rebuild(&rng_c).ok());
  EXPECT_EQ(streamed->base_rows(), all.size());
  ASSERT_TRUE(streamed->CheckInvariants().ok());
  expect_equal_neighbors("rebuild vs fresh build");
}

}  // namespace
}  // namespace hos
