#include "src/eval/report.h"

#include <gtest/gtest.h>

namespace hos::eval {
namespace {

TEST(TableTest, AlignsColumns) {
  Table table({"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "23456"});
  std::string text = table.ToString();
  // Header present, separator line present, all rows present.
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_NE(text.find("a-much-longer-name"), std::string::npos);
  // Column 2 starts at the same offset in every data line.
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t next = text.find('\n', pos);
    lines.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  size_t col = lines[2].find('1');
  EXPECT_EQ(lines[3].find("23456"), col);
}

TEST(TableTest, EmptyTableRendersHeaderOnly) {
  Table table({"a"});
  std::string text = table.ToString();
  EXPECT_NE(text.find('a'), std::string::npos);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 3), "1.000");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace hos::eval
