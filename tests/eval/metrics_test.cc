#include "src/eval/metrics.h"

#include <gtest/gtest.h>

namespace hos::eval {
namespace {

Subspace S(std::initializer_list<int> one_based) {
  return Subspace::FromOneBased(std::vector<int>(one_based));
}

TEST(CompareSubspaceSetsTest, PerfectMatch) {
  auto m = CompareSubspaceSets({S({1, 2}), S({3})}, {S({3}), S({1, 2})});
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_EQ(m.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(CompareSubspaceSetsTest, PartialMatch) {
  auto m = CompareSubspaceSets({S({1, 2}), S({4})}, {S({1, 2}), S({3})});
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f1, 0.5);
}

TEST(CompareSubspaceSetsTest, EmptyPrediction) {
  auto m = CompareSubspaceSets({}, {S({1})});
  EXPECT_DOUBLE_EQ(m.precision, 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(CompareSubspaceSetsTest, EmptyTruth) {
  auto m = CompareSubspaceSets({S({1})}, {});
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);  // vacuous
}

TEST(CompareSubspaceSetsTest, DuplicatesDoNotInflate) {
  auto m = CompareSubspaceSets({S({1}), S({1}), S({1})}, {S({1})});
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
}

TEST(DimensionJaccardTest, Values) {
  EXPECT_DOUBLE_EQ(DimensionJaccard(S({1, 2}), S({1, 2})), 1.0);
  EXPECT_DOUBLE_EQ(DimensionJaccard(S({1, 2}), S({2, 3})), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(DimensionJaccard(S({1}), S({2})), 0.0);
  EXPECT_DOUBLE_EQ(DimensionJaccard(Subspace(), Subspace()), 1.0);
}

TEST(BestMatchJaccardTest, AveragesBestMatches) {
  // Truth {1,2}: best match {1,2} → 1.0. Truth {3,4}: best is {3} → 0.5.
  double score =
      BestMatchJaccard({S({1, 2}), S({3})}, {S({1, 2}), S({3, 4})});
  EXPECT_DOUBLE_EQ(score, 0.75);
}

TEST(BestMatchJaccardTest, EmptyTruthIsPerfect) {
  EXPECT_DOUBLE_EQ(BestMatchJaccard({S({1})}, {}), 1.0);
}

TEST(BestMatchJaccardTest, EmptyPredictionIsZero) {
  EXPECT_DOUBLE_EQ(BestMatchJaccard({}, {S({1})}), 0.0);
}

TEST(ComparePointSetsTest, Basics) {
  auto m = ComparePointSets({1, 2, 3}, {2, 3, 4});
  EXPECT_EQ(m.true_positives, 2u);
  EXPECT_EQ(m.false_positives, 1u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 2.0 / 3.0);
}

}  // namespace
}  // namespace hos::eval
