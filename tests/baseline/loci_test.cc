#include "src/baseline/loci.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/knn/linear_scan.h"

namespace hos::baseline {
namespace {

TEST(LociTest, ValidatesOptions) {
  Rng rng(1);
  data::Dataset ds = data::GenerateUniform(50, 2, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LociOptions options;
  options.alpha = 0.0;
  EXPECT_FALSE(ComputeLociScores(ds, engine, options).ok());
  options = LociOptions{};
  options.alpha = 1.0;
  EXPECT_FALSE(ComputeLociScores(ds, engine, options).ok());
  options = LociOptions{};
  options.k_sigma = 0.0;
  EXPECT_FALSE(ComputeLociScores(ds, engine, options).ok());
  options = LociOptions{};
  options.num_radii = 0;
  EXPECT_FALSE(ComputeLociScores(ds, engine, options).ok());
  data::Dataset empty(2);
  EXPECT_FALSE(ComputeLociScores(empty, engine, LociOptions{}).ok());
}

TEST(LociTest, UniformDataMostlyClean) {
  Rng rng(2);
  data::Dataset ds = data::GenerateUniform(400, 2, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  auto scores = ComputeLociScores(ds, engine, LociOptions{});
  ASSERT_TRUE(scores.ok());
  int flagged = 0;
  for (const auto& s : *scores) flagged += s.is_outlier;
  // LOCI on homogeneous data flags at most a few boundary artefacts.
  EXPECT_LE(flagged, 400 / 20);
}

TEST(LociTest, DetectsIsolatedPoint) {
  Rng rng(3);
  data::GaussianMixtureSpec spec;
  spec.num_points = 300;
  spec.num_dims = 2;
  spec.num_clusters = 2;
  spec.cluster_stddev = 0.03;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);
  data::PointId outlier = ds.Append(std::vector<double>{3.0, 3.0});
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  auto scores = ComputeLociScores(ds, engine, LociOptions{});
  ASSERT_TRUE(scores.ok());
  EXPECT_TRUE((*scores)[outlier].is_outlier);
  EXPECT_GT((*scores)[outlier].max_deviation_ratio, 1.0);
}

TEST(LociTest, DegenerateDataDoesNotCrash) {
  data::Dataset ds(2);
  for (int i = 0; i < 60; ++i) ds.Append(std::vector<double>{1.0, 1.0});
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  auto scores = ComputeLociScores(ds, engine, LociOptions{});
  ASSERT_TRUE(scores.ok());
  for (const auto& s : *scores) {
    EXPECT_FALSE(s.is_outlier);
  }
}

TEST(LociTest, SubspaceRestrictionRevealsPlantedOutlier) {
  Rng rng(4);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 400;
  spec.num_dims = 8;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.45;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());
  const data::PointId planted = generated->outliers[0].id;
  knn::LinearScanKnn engine(generated->dataset, knn::MetricKind::kL2);

  LociOptions sub;
  sub.subspace = generated->outliers[0].subspace;
  auto sub_scores = ComputeLociScores(generated->dataset, engine, sub);
  ASSERT_TRUE(sub_scores.ok());
  EXPECT_TRUE((*sub_scores)[planted].is_outlier);

  LociOptions full;
  auto full_scores = ComputeLociScores(generated->dataset, engine, full);
  ASSERT_TRUE(full_scores.ok());
  // In the full space the deviation is diluted across 6 noise dimensions.
  EXPECT_LT((*full_scores)[planted].max_deviation_ratio,
            (*sub_scores)[planted].max_deviation_ratio);
}

}  // namespace
}  // namespace hos::baseline
