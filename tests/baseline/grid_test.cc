#include "src/baseline/grid.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/generator.h"

namespace hos::baseline {
namespace {

TEST(EquiDepthGridTest, RejectsBadInput) {
  data::Dataset empty(2);
  EXPECT_FALSE(EquiDepthGrid::Build(empty, 4).ok());
  Rng rng(1);
  data::Dataset ds = data::GenerateUniform(10, 2, &rng);
  EXPECT_FALSE(EquiDepthGrid::Build(ds, 1).ok());
}

TEST(EquiDepthGridTest, CellsCoverAllValues) {
  Rng rng(2);
  data::Dataset ds = data::GenerateUniform(500, 3, &rng);
  auto grid = EquiDepthGrid::Build(ds, 5);
  ASSERT_TRUE(grid.ok());
  for (data::PointId i = 0; i < ds.size(); ++i) {
    auto cells = grid->Discretize(ds.Row(i));
    for (int c : cells) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, 5);
    }
  }
}

TEST(EquiDepthGridTest, EquiDepthOnUniformData) {
  Rng rng(3);
  data::Dataset ds = data::GenerateUniform(2000, 1, &rng);
  const int phi = 4;
  auto grid = EquiDepthGrid::Build(ds, phi);
  ASSERT_TRUE(grid.ok());
  std::vector<int> counts(phi, 0);
  for (data::PointId i = 0; i < ds.size(); ++i) {
    ++counts[grid->CellOf(0, ds.At(i, 0))];
  }
  // Each of the phi cells holds ~ n/phi points.
  for (int c = 0; c < phi; ++c) {
    EXPECT_NEAR(counts[c], 500, 60) << "cell " << c;
  }
}

TEST(EquiDepthGridTest, SkewedDataStillBalanced) {
  // Equi-depth (not equi-width): skew must not empty any cell.
  Rng rng(4);
  data::Dataset ds(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform();
    ds.Append(std::vector<double>{v * v * v});  // heavy skew toward 0
  }
  const int phi = 8;
  auto grid = EquiDepthGrid::Build(ds, phi);
  ASSERT_TRUE(grid.ok());
  std::vector<int> counts(phi, 0);
  for (data::PointId i = 0; i < ds.size(); ++i) {
    ++counts[grid->CellOf(0, ds.At(i, 0))];
  }
  for (int c = 0; c < phi; ++c) {
    EXPECT_GT(counts[c], 1000 / phi / 2) << "cell " << c;
  }
}

TEST(EquiDepthGridTest, OutOfRangeValuesClampToEdgeCells) {
  Rng rng(5);
  data::Dataset ds = data::GenerateUniform(100, 1, &rng);
  auto grid = EquiDepthGrid::Build(ds, 4);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->CellOf(0, -100.0), 0);
  EXPECT_EQ(grid->CellOf(0, +100.0), 3);
}

TEST(EquiDepthGridTest, CutsAreAscending) {
  Rng rng(6);
  data::Dataset ds = data::GenerateUniform(300, 2, &rng);
  auto grid = EquiDepthGrid::Build(ds, 6);
  ASSERT_TRUE(grid.ok());
  for (int dim = 0; dim < 2; ++dim) {
    const auto& cuts = grid->Cuts(dim);
    ASSERT_EQ(cuts.size(), 5u);
    for (size_t i = 1; i < cuts.size(); ++i) {
      EXPECT_LE(cuts[i - 1], cuts[i]);
    }
  }
}

}  // namespace
}  // namespace hos::baseline
