#include "src/baseline/evolutionary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/generator.h"

namespace hos::baseline {
namespace {

TEST(ProjectionTest, SubspaceAndCount) {
  Projection p;
  p.cells = {2, Projection::kWildcard, 0, Projection::kWildcard};
  EXPECT_EQ(p.subspace(), Subspace::FromOneBased({1, 3}));
  EXPECT_EQ(p.NumSpecified(), 2);
  EXPECT_EQ(p.ToString(), "2 * 0 *");
}

TEST(EvolutionaryTest, CreateValidatesOptions) {
  Rng rng(1);
  data::Dataset ds = data::GenerateUniform(100, 4, &rng);
  EvolutionaryOptions options;
  options.target_dims = 5;  // > num_dims
  EXPECT_FALSE(EvolutionaryOutlierSearch::Create(ds, options).ok());
  options = EvolutionaryOptions{};
  options.population_size = 2;
  EXPECT_FALSE(EvolutionaryOutlierSearch::Create(ds, options).ok());
  options = EvolutionaryOptions{};
  options.top_m = 0;
  EXPECT_FALSE(EvolutionaryOutlierSearch::Create(ds, options).ok());
}

TEST(EvolutionaryTest, SparsityOfEmptyCubeIsNegative) {
  Rng rng(2);
  data::Dataset ds = data::GenerateUniform(1000, 3, &rng);
  EvolutionaryOptions options;
  options.phi = 4;
  options.target_dims = 2;
  auto search = EvolutionaryOutlierSearch::Create(ds, options);
  ASSERT_TRUE(search.ok());
  // A cube covering no points has S = -sqrt(N f^k / (1 - f^k)) < 0; verify
  // against the closed form with n(D) = 0.
  // Build an impossible candidate by checking one and computing expectation.
  std::vector<int> cells = {0, 1, Projection::kWildcard};
  double s = search->SparsityOf(cells);
  const double f2 = 1.0 / 16.0;
  const double expected_floor =
      (0.0 - 1000 * f2) / std::sqrt(1000 * f2 * (1 - f2));
  EXPECT_GE(s, expected_floor - 1e-9);
}

TEST(EvolutionaryTest, SparsityMatchesClosedForm) {
  Rng rng(3);
  data::Dataset ds = data::GenerateUniform(800, 2, &rng);
  EvolutionaryOptions options;
  options.phi = 4;
  options.target_dims = 1;
  auto search = EvolutionaryOutlierSearch::Create(ds, options);
  ASSERT_TRUE(search.ok());
  // With equi-depth cells on one dimension, each cell holds ~n/phi points,
  // so sparsity of any 1-dim cube is near 0.
  for (int c = 0; c < 4; ++c) {
    std::vector<int> cells = {c, Projection::kWildcard};
    EXPECT_NEAR(search->SparsityOf(cells), 0.0, 1.0);
  }
}

TEST(EvolutionaryTest, PointsInMatchesBruteForce) {
  Rng rng(4);
  data::Dataset ds = data::GenerateUniform(300, 3, &rng);
  EvolutionaryOptions options;
  options.phi = 3;
  auto search = EvolutionaryOutlierSearch::Create(ds, options);
  ASSERT_TRUE(search.ok());
  Projection p;
  p.cells = {1, Projection::kWildcard, 2};
  auto inside = search->PointsIn(p);
  size_t brute = 0;
  for (data::PointId i = 0; i < ds.size(); ++i) {
    brute += (search->grid().CellOf(0, ds.At(i, 0)) == 1 &&
              search->grid().CellOf(2, ds.At(i, 2)) == 2);
  }
  EXPECT_EQ(inside.size(), brute);
}

TEST(EvolutionaryTest, RunReturnsSortedTopM) {
  Rng data_rng(5);
  data::Dataset ds = data::GenerateUniform(500, 4, &data_rng);
  EvolutionaryOptions options;
  options.phi = 3;
  options.target_dims = 2;
  options.population_size = 30;
  options.max_generations = 20;
  options.top_m = 5;
  auto search = EvolutionaryOutlierSearch::Create(ds, options);
  ASSERT_TRUE(search.ok());
  Rng rng(5);
  auto result = search->Run(&rng);
  ASSERT_LE(result.size(), 5u);
  ASSERT_GE(result.size(), 1u);
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].sparsity, result[i].sparsity);  // ascending
  }
  for (const auto& p : result) {
    EXPECT_EQ(p.NumSpecified(), 2);
  }
  EXPECT_GT(search->fitness_evaluations(), 0u);
}

TEST(EvolutionaryTest, FindsPlantedSparseRegion) {
  // Construct data where one grid cube in dims (1,2) is empty: background
  // correlated so that cell combinations off the diagonal are sparse.
  Rng rng(6);
  data::Dataset ds(4);
  for (int i = 0; i < 2000; ++i) {
    double t = rng.Uniform();
    // dims 1,2 strongly correlated; dims 3,4 uniform noise.
    ds.Append(std::vector<double>{t, std::clamp(t + rng.Gaussian(0, 0.02),
                                                0.0, 1.0),
                                  rng.Uniform(), rng.Uniform()});
  }
  EvolutionaryOptions options;
  options.phi = 4;
  options.target_dims = 2;
  options.population_size = 60;
  options.max_generations = 60;
  options.top_m = 8;
  auto search = EvolutionaryOutlierSearch::Create(ds, options);
  ASSERT_TRUE(search.ok());
  Rng ga_rng(6);
  auto result = search->Run(&ga_rng);
  ASSERT_FALSE(result.empty());
  // The sparsest projections should constrain the correlated pair {1,2}:
  // off-diagonal cells there are nearly empty (sparsity << 0).
  EXPECT_LT(result[0].sparsity, -5.0);
  EXPECT_EQ(result[0].subspace(), Subspace::FromOneBased({1, 2}));
}

TEST(EvolutionaryTest, ExhaustiveReferenceEnumeratesAll) {
  Rng rng(8);
  data::Dataset ds = data::GenerateUniform(300, 4, &rng);
  EvolutionaryOptions options;
  options.phi = 3;
  options.target_dims = 2;
  options.top_m = 1000;  // keep everything
  auto search = EvolutionaryOutlierSearch::Create(ds, options);
  ASSERT_TRUE(search.ok());
  auto all = search->RunExhaustive();
  // C(4,2) * 3^2 = 54 projections.
  EXPECT_EQ(all.size(), 54u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].sparsity, all[i].sparsity);
  }
}

TEST(EvolutionaryTest, GaFindsNearOptimalSparsity) {
  // Correlated pair => one clearly sparsest projection; the GA must find a
  // solution whose sparsity is close to the exhaustive optimum.
  Rng rng(9);
  data::Dataset ds(5);
  for (int i = 0; i < 1500; ++i) {
    double t = rng.Uniform();
    ds.Append(std::vector<double>{
        t, std::clamp(t + rng.Gaussian(0, 0.03), 0.0, 1.0), rng.Uniform(),
        rng.Uniform(), rng.Uniform()});
  }
  EvolutionaryOptions options;
  options.phi = 4;
  options.target_dims = 2;
  options.population_size = 60;
  options.max_generations = 80;
  options.top_m = 5;
  auto search = EvolutionaryOutlierSearch::Create(ds, options);
  ASSERT_TRUE(search.ok());
  auto optimum = search->RunExhaustive();
  Rng ga_rng(9);
  auto ga = search->Run(&ga_rng);
  ASSERT_FALSE(optimum.empty());
  ASSERT_FALSE(ga.empty());
  EXPECT_LE(ga[0].sparsity, optimum[0].sparsity * 0.8)
      << "GA best " << ga[0].sparsity << " vs optimum "
      << optimum[0].sparsity;
}

TEST(EvolutionaryTest, DeterministicGivenSeed) {
  Rng data_rng(7);
  data::Dataset ds = data::GenerateUniform(300, 4, &data_rng);
  EvolutionaryOptions options;
  options.population_size = 20;
  options.max_generations = 10;
  auto search_a = EvolutionaryOutlierSearch::Create(ds, options);
  auto search_b = EvolutionaryOutlierSearch::Create(ds, options);
  ASSERT_TRUE(search_a.ok() && search_b.ok());
  Rng rng_a(7), rng_b(7);
  auto ra = search_a->Run(&rng_a);
  auto rb = search_b->Run(&rng_b);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].cells, rb[i].cells);
  }
}

}  // namespace
}  // namespace hos::baseline
