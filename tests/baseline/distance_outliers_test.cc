#include "src/baseline/distance_outliers.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/knn/linear_scan.h"

namespace hos::baseline {
namespace {

data::Dataset ClusterPlusOutlier(data::PointId* outlier_id) {
  Rng rng(1);
  data::GaussianMixtureSpec spec;
  spec.num_points = 200;
  spec.num_dims = 2;
  spec.num_clusters = 1;
  spec.cluster_stddev = 0.02;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);
  *outlier_id = ds.Append(std::vector<double>{3.0, 3.0});
  return ds;
}

TEST(DbOutlierTest, ValidatesOptions) {
  data::PointId outlier;
  data::Dataset ds = ClusterPlusOutlier(&outlier);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  DbOutlierOptions options;
  options.pct = 0.0;
  EXPECT_FALSE(FindDbOutliers(ds, engine, options).ok());
  options.pct = 1.0;
  EXPECT_FALSE(FindDbOutliers(ds, engine, options).ok());
  options = DbOutlierOptions{};
  options.distance = 0.0;
  EXPECT_FALSE(FindDbOutliers(ds, engine, options).ok());
}

TEST(DbOutlierTest, DetectsIsolatedPoint) {
  data::PointId outlier;
  data::Dataset ds = ClusterPlusOutlier(&outlier);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  DbOutlierOptions options;
  options.pct = 0.95;
  options.distance = 1.0;
  auto result = FindDbOutliers(ds, engine, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], outlier);
}

TEST(DbOutlierTest, HugeRadiusFindsNothing) {
  data::PointId outlier;
  data::Dataset ds = ClusterPlusOutlier(&outlier);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  DbOutlierOptions options;
  options.distance = 100.0;
  auto result = FindDbOutliers(ds, engine, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(DbOutlierTest, TinyRadiusFlagsEveryone) {
  Rng rng(2);
  data::Dataset ds = data::GenerateUniform(100, 2, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  DbOutlierOptions options;
  options.distance = 1e-9;
  options.pct = 0.99;
  auto result = FindDbOutliers(ds, engine, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 100u);
}

TEST(KthNnOutlierTest, ValidatesOptions) {
  data::PointId outlier;
  data::Dataset ds = ClusterPlusOutlier(&outlier);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  KthNnOutlierOptions options;
  options.k = 0;
  EXPECT_FALSE(FindKthNnOutliers(ds, engine, options).ok());
  options.k = 100000;
  EXPECT_FALSE(FindKthNnOutliers(ds, engine, options).ok());
}

TEST(KthNnOutlierTest, RanksIsolatedPointFirst) {
  data::PointId outlier;
  data::Dataset ds = ClusterPlusOutlier(&outlier);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  KthNnOutlierOptions options;
  options.k = 5;
  options.top_n = 3;
  auto result = FindKthNnOutliers(ds, engine, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 3u);
  EXPECT_EQ((*result)[0].id, outlier);
  EXPECT_GT((*result)[0].score, (*result)[1].score);
}

TEST(KthNnOutlierTest, ScoresDescending) {
  Rng rng(3);
  data::Dataset ds = data::GenerateUniform(150, 3, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  KthNnOutlierOptions options;
  options.k = 4;
  options.top_n = 10;
  auto result = FindKthNnOutliers(ds, engine, options);
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_GE((*result)[i - 1].score, (*result)[i].score);
  }
}

// The paper's motivation again, with the distance-based definitions: the
// planted subspace outlier is NOT flagged in the full space, but it is the
// top outlier when the detector is restricted to the planted subspace.
TEST(DistanceOutliersTest, SubspaceRestrictionRevealsPlantedOutlier) {
  Rng rng(4);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 400;
  spec.num_dims = 8;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());
  const data::PointId planted = generated->outliers[0].id;
  knn::LinearScanKnn engine(generated->dataset, knn::MetricKind::kL2);

  KthNnOutlierOptions options;
  options.k = 5;
  options.top_n = 1;
  auto full = FindKthNnOutliers(generated->dataset, engine, options);
  options.subspace = generated->outliers[0].subspace;
  auto sub = FindKthNnOutliers(generated->dataset, engine, options);
  ASSERT_TRUE(full.ok() && sub.ok());
  EXPECT_EQ((*sub)[0].id, planted);
  EXPECT_NE((*full)[0].id, planted);
}

}  // namespace
}  // namespace hos::baseline
