#include "src/baseline/lof.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/knn/linear_scan.h"

namespace hos::baseline {
namespace {

TEST(LofTest, ValidatesOptions) {
  Rng rng(1);
  data::Dataset ds = data::GenerateUniform(5, 2, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LofOptions options;
  options.min_pts = 0;
  EXPECT_FALSE(ComputeLofScores(ds, engine, options).ok());
  options.min_pts = 10;  // > dataset size
  EXPECT_FALSE(ComputeLofScores(ds, engine, options).ok());
}

TEST(LofTest, UniformDataScoresNearOne) {
  Rng rng(2);
  data::Dataset ds = data::GenerateUniform(400, 2, &rng);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LofOptions options;
  options.min_pts = 10;
  auto scores = ComputeLofScores(ds, engine, options);
  ASSERT_TRUE(scores.ok());
  double mean = 0.0;
  for (double s : *scores) mean += s;
  mean /= static_cast<double>(scores->size());
  EXPECT_NEAR(mean, 1.0, 0.15);
}

TEST(LofTest, IsolatedPointScoresHigh) {
  Rng rng(3);
  data::GaussianMixtureSpec spec;
  spec.num_points = 300;
  spec.num_dims = 2;
  spec.num_clusters = 2;
  spec.cluster_stddev = 0.03;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);
  // Plant one far-away point.
  data::PointId outlier = ds.Append(std::vector<double>{5.0, 5.0});
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LofOptions options;
  options.min_pts = 10;
  auto scores = ComputeLofScores(ds, engine, options);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[outlier], 2.0);
  auto top = TopLofOutliers(*scores, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], outlier);
}

TEST(LofTest, DuplicateClusterDoesNotDivideByZero) {
  data::Dataset ds(2);
  for (int i = 0; i < 50; ++i) ds.Append(std::vector<double>{1.0, 1.0});
  ds.Append(std::vector<double>{2.0, 2.0});
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LofOptions options;
  options.min_pts = 5;
  auto scores = ComputeLofScores(ds, engine, options);
  ASSERT_TRUE(scores.ok());
  for (double s : *scores) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

// The motivating claim of the paper: a subspace outlier is invisible to a
// full-space detector but visible when LOF is scored in the right subspace.
TEST(LofTest, SubspaceOutlierInvisibleInFullSpace) {
  Rng rng(4);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 500;
  spec.num_dims = 8;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  ASSERT_TRUE(generated.ok());
  const data::PointId planted = generated->outliers[0].id;
  knn::LinearScanKnn engine(generated->dataset, knn::MetricKind::kL2);

  LofOptions full;
  full.min_pts = 10;
  auto full_scores = ComputeLofScores(generated->dataset, engine, full);
  ASSERT_TRUE(full_scores.ok());

  LofOptions sub;
  sub.min_pts = 10;
  sub.subspace = generated->outliers[0].subspace;
  auto sub_scores = ComputeLofScores(generated->dataset, engine, sub);
  ASSERT_TRUE(sub_scores.ok());

  // Scored in the planted subspace the point stands out far more than in
  // the full space (6 noisy dimensions wash the deviation out).
  EXPECT_GT((*sub_scores)[planted], (*full_scores)[planted]);
  auto top_sub = TopLofOutliers(*sub_scores, 3);
  EXPECT_NE(std::find(top_sub.begin(), top_sub.end(), planted),
            top_sub.end());
}

TEST(TopLofOutliersTest, OrdersDescending) {
  std::vector<double> scores{1.0, 5.0, 3.0, 5.0};
  auto top = TopLofOutliers(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1u);  // score 5, lower id first on tie
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(top[2], 2u);
}

}  // namespace
}  // namespace hos::baseline
