// Adversarial scenario generator for the differential suites (after
// "Adversarial Subspace Generation for Outlier Detection in High-Dimensional
// Data"): seeded, deterministic datasets engineered to stress exactly the
// places an approximate fast path can go wrong —
//
//  * near-threshold OD bands: probe points surrounded by rings of
//    neighbours at radius ~threshold/k, so OD(probe, s) lands within a few
//    percent of T in the full space and just under it in projections; any
//    bound-based shortcut must thread these straits or fall back to exact;
//  * correlated dimensions: the last dimension is an affine copy of the
//    first (plus epsilon noise), so per-dimension independence assumptions
//    (exactly what cell-histogram bounds make) are maximally wrong;
//  * duplicate points: zero-distance neighbour pairs exercise bound lower
//    edges at exactly 0 and kNN tie-breaking;
//  * tombstones: a deterministic id set the caller deletes after build, so
//    summaries/histograms built before the deletes serve stale occupancy.
//
// The generator produces raw append-order rows plus the interesting probe
// ids; callers build a Dataset/HosMiner from them (use
// NormalizationKind::kNone so `threshold` keeps meaning) and apply
// `tombstones` via Delete. Everything derives from Rng(spec.seed), so equal
// specs generate byte-equal scenarios on every platform and run.

#ifndef HOS_TESTS_TESTUTIL_ADVERSARIAL_GEN_H_
#define HOS_TESTS_TESTUTIL_ADVERSARIAL_GEN_H_

#include <cstdint>
#include <vector>

#include "src/data/dataset.h"

namespace hos::testutil {

struct AdversarialSpec {
  int num_dims = 4;
  /// Uniform background cloud rows (in [0, 1]^d).
  size_t background_rows = 60;
  /// k of the OD measure the scenario is tuned for.
  int k = 3;
  /// Threshold the near-threshold bands are built around.
  double threshold = 0.9;
  uint64_t seed = 1234;
  /// Probe/ring groups; band b's ring radius is threshold / k scaled by
  /// (1 + 0.03 * (b - num_bands/2)), so the probes' full-space ODs
  /// straddle the threshold from both sides.
  int num_bands = 3;
  /// Background rows duplicated verbatim (appended at the end).
  int duplicates = 6;
  /// Make the last dimension an affine copy of the first for background
  /// rows (needs num_dims >= 2).
  bool correlated_dims = true;
  /// Size of the tombstone id set the caller should Delete after build:
  /// deterministic background ids plus one ring member per band.
  size_t tombstones = 5;
};

struct AdversarialDataset {
  /// Rows in append order (raw coordinates).
  std::vector<std::vector<double>> rows;
  /// Band probe ids — the near-threshold query points (never tombstoned).
  std::vector<data::PointId> probes;
  /// Ids the caller should tombstone (all distinct, never probes).
  std::vector<data::PointId> tombstones;
  int k = 0;
  double threshold = 0.0;
};

AdversarialDataset MakeAdversarial(const AdversarialSpec& spec);

/// rows → Dataset convenience (rows are generator output, so always valid).
data::Dataset ToDataset(const AdversarialDataset& scenario);

}  // namespace hos::testutil

#endif  // HOS_TESTS_TESTUTIL_ADVERSARIAL_GEN_H_
