#include "tests/testutil/adversarial_gen.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "src/common/rng.h"

namespace hos::testutil {
namespace {

/// A uniformly random direction on the unit sphere in `dims` dimensions
/// (normalized Gaussian vector; resampled in the measure-zero case where
/// the norm underflows).
std::vector<double> RandomUnit(int dims, Rng* rng) {
  std::vector<double> u(dims);
  double norm = 0.0;
  do {
    norm = 0.0;
    for (int d = 0; d < dims; ++d) {
      u[d] = rng->Gaussian(0.0, 1.0);
      norm += u[d] * u[d];
    }
  } while (norm <= 1e-30);
  norm = std::sqrt(norm);
  for (int d = 0; d < dims; ++d) u[d] /= norm;
  return u;
}

}  // namespace

AdversarialDataset MakeAdversarial(const AdversarialSpec& spec) {
  Rng rng(spec.seed);
  AdversarialDataset out;
  out.k = spec.k;
  out.threshold = spec.threshold;

  // --- Background cloud in [0, 1]^d, optionally with the last dimension an
  // affine copy of the first. The epsilon noise keeps rows distinct without
  // breaking the correlation the histogram bounds will wrongly treat as
  // independent.
  for (size_t i = 0; i < spec.background_rows; ++i) {
    std::vector<double> row(spec.num_dims);
    for (int d = 0; d < spec.num_dims; ++d) row[d] = rng.Uniform(0.0, 1.0);
    if (spec.correlated_dims && spec.num_dims >= 2) {
      row[spec.num_dims - 1] =
          0.25 + 0.5 * row[0] + rng.Gaussian(0.0, 1e-3);
    }
    out.rows.push_back(std::move(row));
  }

  // --- Near-threshold bands: each band is a probe at a center far from the
  // background cloud plus a ring of k+2 neighbours at a radius tuned so the
  // probe's full-space OD (sum of k nearest distances, L2) lands at
  // threshold * (1 ± a few percent). Bands below num_bands/2 sit just under
  // T, bands above just over, so verdicts straddle the threshold.
  std::vector<data::PointId> first_ring_member;
  for (int b = 0; b < spec.num_bands; ++b) {
    const double scale = 1.0 + 0.03 * (b - spec.num_bands / 2);
    const double radius =
        (spec.threshold / std::max(spec.k, 1)) * scale;
    std::vector<double> center(spec.num_dims);
    for (int d = 0; d < spec.num_dims; ++d) {
      center[d] = 1.5 + 0.75 * b + rng.Uniform(-0.1, 0.1);
    }
    out.probes.push_back(static_cast<data::PointId>(out.rows.size()));
    out.rows.push_back(center);
    for (int j = 0; j < spec.k + 2; ++j) {
      const std::vector<double> u = RandomUnit(spec.num_dims, &rng);
      std::vector<double> ring(spec.num_dims);
      for (int d = 0; d < spec.num_dims; ++d) {
        ring[d] = center[d] + radius * u[d];
      }
      if (j == 0) {
        first_ring_member.push_back(
            static_cast<data::PointId>(out.rows.size()));
      }
      out.rows.push_back(std::move(ring));
    }
  }

  // --- Exact duplicates of the earliest background rows, appended last so
  // the pairs are far apart in id order (and in the VA-file's row-major
  // cell array).
  const int dup_count = std::min<int>(
      spec.duplicates, static_cast<int>(spec.background_rows));
  for (int i = 0; i < dup_count; ++i) {
    out.rows.push_back(out.rows[static_cast<size_t>(i)]);
  }

  // --- Tombstones: one ring member per band first (stressing summaries
  // built before the delete — the stale histogram still counts the dead
  // neighbour's cell), then background rows at a fixed stride. Probes are
  // never tombstoned.
  for (data::PointId id : first_ring_member) {
    if (out.tombstones.size() >= spec.tombstones) break;
    out.tombstones.push_back(id);
  }
  for (size_t i = 2; i < spec.background_rows && out.tombstones.size() <
                                                     spec.tombstones;
       i += 7) {
    out.tombstones.push_back(static_cast<data::PointId>(i));
  }
  return out;
}

data::Dataset ToDataset(const AdversarialDataset& scenario) {
  const int num_dims =
      scenario.rows.empty() ? 1 : static_cast<int>(scenario.rows[0].size());
  data::Dataset dataset(num_dims);
  for (const std::vector<double>& row : scenario.rows) {
    dataset.Append(std::span<const double>(row));
  }
  return dataset;
}

}  // namespace hos::testutil
