// Configuration fuzzing for the X-tree: across node capacities, overlap
// thresholds, supernode caps, data shapes and metrics, the tree must keep
// its structural invariants and agree with the linear-scan oracle.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/index/xtree.h"
#include "src/knn/linear_scan.h"

namespace hos::index {
namespace {

using knn::KnnQuery;
using knn::MetricKind;

struct FuzzParam {
  int max_entries;
  double max_overlap_ratio;
  int max_supernode_factor;
  bool clustered;
  MetricKind metric;
};

class XTreeFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(XTreeFuzzTest, InvariantsAndOracleAgreement) {
  const FuzzParam param = GetParam();
  Rng rng(static_cast<uint64_t>(param.max_entries) * 1000 +
          static_cast<uint64_t>(param.max_overlap_ratio * 100));
  const int d = 7;

  data::Dataset ds(d);
  if (param.clustered) {
    data::GaussianMixtureSpec spec;
    spec.num_points = 900;
    spec.num_dims = d;
    spec.num_clusters = 5;
    spec.cluster_stddev = 0.08;
    ds = data::GenerateGaussianMixture(spec, &rng);
  } else {
    ds = data::GenerateUniform(900, d, &rng);
  }

  XTreeConfig config;
  config.max_entries = param.max_entries;
  config.max_overlap_ratio = param.max_overlap_ratio;
  config.max_supernode_factor = param.max_supernode_factor;

  auto tree = XTree::BuildByInsertion(ds, param.metric, config);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());

  knn::LinearScanKnn oracle(ds, param.metric);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<double> q(d);
    for (auto& v : q) v = rng.Uniform(-0.2, 1.2);
    KnnQuery query;
    query.point = q;
    query.subspace = Subspace(rng.UniformInt(1, (1 << d) - 1));
    query.k = 1 + static_cast<int>(rng.UniformInt(0, 11));
    auto got = tree->Knn(query);
    auto want = oracle.Search(query);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
    }
  }

  // Mutate: remove a slice, re-check.
  for (size_t idx : rng.SampleWithoutReplacement(ds.size(), 150)) {
    ASSERT_TRUE(tree->Remove(static_cast<data::PointId>(idx)).ok());
  }
  EXPECT_EQ(tree->size(), 750u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, XTreeFuzzTest,
    ::testing::Values(
        FuzzParam{8, 0.2, 64, false, MetricKind::kL2},
        FuzzParam{8, 0.01, 4, true, MetricKind::kL2},   // eager supernodes, tight cap
        FuzzParam{64, 0.2, 64, false, MetricKind::kL2},
        FuzzParam{16, 0.9, 64, true, MetricKind::kL2},  // splits almost always accepted
        FuzzParam{16, 0.2, 64, true, MetricKind::kL1},
        FuzzParam{16, 0.2, 64, false, MetricKind::kLInf}),
    [](const auto& info) {
      return "M" + std::to_string(info.param.max_entries) + "_ov" +
             std::to_string(
                 static_cast<int>(info.param.max_overlap_ratio * 100)) +
             "_cap" + std::to_string(info.param.max_supernode_factor) +
             (info.param.clustered ? "_clustered" : "_uniform") + "_" +
             std::string(knn::MetricKindToString(info.param.metric));
    });

}  // namespace
}  // namespace hos::index
