#include "src/index/va_file.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/knn/linear_scan.h"

namespace hos::index {
namespace {

using knn::KnnQuery;
using knn::MetricKind;

TEST(VaFileTest, ValidatesBits) {
  Rng rng(1);
  data::Dataset ds = data::GenerateUniform(10, 2, &rng);
  VaFileConfig config;
  config.bits_per_dim = 0;
  EXPECT_FALSE(VaFile::Build(ds, MetricKind::kL2, config).ok());
  config.bits_per_dim = 9;
  EXPECT_FALSE(VaFile::Build(ds, MetricKind::kL2, config).ok());
}

TEST(VaFileTest, EmptyAndTinyDatasets) {
  data::Dataset empty(2);
  auto file = VaFile::Build(empty, MetricKind::kL2);
  ASSERT_TRUE(file.ok());
  std::vector<double> q{0.0, 0.0};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(2);
  query.k = 3;
  EXPECT_TRUE(file->Knn(query).empty());

  data::Dataset one(2);
  one.Append(std::vector<double>{0.5, 0.5});
  auto single = VaFile::Build(one, MetricKind::kL2);
  ASSERT_TRUE(single.ok());
  auto result = single->Knn(query);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);
}

TEST(VaFileTest, ConstantColumnHandled) {
  data::Dataset ds(2);
  for (int i = 0; i < 20; ++i) {
    ds.Append(std::vector<double>{1.0, i * 0.1});
  }
  auto file = VaFile::Build(ds, MetricKind::kL2);
  ASSERT_TRUE(file.ok());
  std::vector<double> q{1.0, 0.55};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(2);
  query.k = 2;
  auto result = file->Knn(query);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_TRUE((result[0].id == 5 || result[0].id == 6));
}

struct Param {
  MetricKind metric;
  int bits;
};

class VaFileEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(VaFileEquivalenceTest, MatchesLinearScanInRandomSubspaces) {
  const Param param = GetParam();
  Rng rng(7);
  const int d = 7;
  data::GaussianMixtureSpec spec;
  spec.num_points = 600;
  spec.num_dims = d;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);
  VaFileConfig config;
  config.bits_per_dim = param.bits;
  auto file = VaFile::Build(ds, param.metric, config);
  ASSERT_TRUE(file.ok());
  knn::LinearScanKnn oracle(ds, param.metric);

  for (int trial = 0; trial < 40; ++trial) {
    data::PointId id =
        static_cast<data::PointId>(rng.UniformInt(0, ds.size() - 1));
    KnnQuery query;
    query.point = ds.Row(id);
    query.subspace = Subspace(rng.UniformInt(1, (1 << d) - 1));
    query.k = 1 + static_cast<int>(rng.UniformInt(0, 9));
    query.exclude = id;
    auto got = file->Knn(query);
    auto want = oracle.Search(query);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "trial " << trial;
      EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
    }
  }
}

TEST_P(VaFileEquivalenceTest, RangeSearchMatchesLinearScan) {
  const Param param = GetParam();
  Rng rng(8);
  data::Dataset ds = data::GenerateUniform(400, 5, &rng);
  VaFileConfig config;
  config.bits_per_dim = param.bits;
  auto file = VaFile::Build(ds, param.metric, config);
  ASSERT_TRUE(file.ok());
  knn::LinearScanKnn oracle(ds, param.metric);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(5);
    for (auto& v : q) v = rng.Uniform();
    Subspace s(rng.UniformInt(1, 31));
    double radius = rng.Uniform(0.05, 0.4);
    auto got = file->RangeSearch(q, s, radius);
    auto want = oracle.RangeSearch(q, s, radius);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndBits, VaFileEquivalenceTest,
    ::testing::Values(Param{MetricKind::kL2, 4}, Param{MetricKind::kL2, 2},
                      Param{MetricKind::kL2, 8}, Param{MetricKind::kL1, 4},
                      Param{MetricKind::kLInf, 4}),
    [](const auto& info) {
      return std::string(knn::MetricKindToString(info.param.metric)) + "_b" +
             std::to_string(info.param.bits);
    });

TEST(VaFileTest, ApproximationFiltersCandidates) {
  Rng rng(9);
  data::GaussianMixtureSpec spec;
  spec.num_points = 5000;
  spec.num_dims = 8;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);
  auto file = VaFile::Build(ds, MetricKind::kL2);
  ASSERT_TRUE(file.ok());
  KnnQuery query;
  auto row = ds.Row(0);
  query.point = row;
  query.subspace = Subspace::Full(8);
  query.k = 5;
  query.exclude = data::PointId{0};
  file->Knn(query);
  // The filter must discard the vast majority of the 5000 points.
  EXPECT_LT(file->last_candidate_count(), 5000u / 4);
  EXPECT_EQ(file->distance_computations(), file->last_candidate_count());
}

TEST(VaFileTest, MoreBitsTightenTheFilter) {
  Rng rng(10);
  data::Dataset ds = data::GenerateUniform(3000, 6, &rng);
  VaFileConfig coarse_config;
  coarse_config.bits_per_dim = 2;
  VaFileConfig fine_config;
  fine_config.bits_per_dim = 8;
  auto coarse = VaFile::Build(ds, MetricKind::kL2, coarse_config);
  auto fine = VaFile::Build(ds, MetricKind::kL2, fine_config);
  ASSERT_TRUE(coarse.ok() && fine.ok());
  KnnQuery query;
  auto row = ds.Row(42);
  query.point = row;
  query.subspace = Subspace::Full(6);
  query.k = 5;
  query.exclude = data::PointId{42};
  coarse->Knn(query);
  fine->Knn(query);
  EXPECT_LT(fine->last_candidate_count(), coarse->last_candidate_count());
}

TEST(VaFileKnnAdapterTest, WorksAsEngine) {
  Rng rng(11);
  data::Dataset ds = data::GenerateUniform(200, 4, &rng);
  auto file = VaFile::Build(ds, MetricKind::kL2);
  ASSERT_TRUE(file.ok());
  VaFileKnn engine(*file);
  EXPECT_EQ(engine.size(), 200u);
  EXPECT_EQ(engine.metric(), MetricKind::kL2);
  KnnQuery query;
  auto row = ds.Row(0);
  query.point = row;
  query.subspace = Subspace::Full(4);
  query.k = 3;
  EXPECT_EQ(engine.Search(query).size(), 3u);
}

}  // namespace
}  // namespace hos::index
