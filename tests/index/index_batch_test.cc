// Backend differential suite for the batched kNN entry points: for every
// backend — LinearScanKnn's fused scan, VaFile's single-sweep batched
// filter+refine, XTree's shared best-first traversal, and IDistance's
// shared-frontier stripe expansion — KnnBatch/SearchBatch must return, for
// every query point, exactly the neighbour list (same ids, same distance
// doubles, same order) its per-point Knn/Search call returns, and
// OutlyingDegreeBatch must reproduce per-point OutlyingDegree bitwise.
// Covered across batch sizes straddling the kernel's query block, ks,
// self-exclusions, appended delta rows and tombstones.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/index/idistance.h"
#include "src/index/va_file.h"
#include "src/index/xtree.h"
#include "src/knn/knn_engine.h"
#include "src/knn/linear_scan.h"

namespace hos::index {
namespace {

using knn::BatchPointQuery;
using knn::KnnQuery;
using knn::MetricKind;
using knn::Neighbor;

Subspace RandomSubspace(int d, Rng* rng) {
  uint64_t mask = 0;
  for (int dim = 0; dim < d; ++dim) {
    if (rng->UniformInt(0, 1) == 1) mask |= uint64_t{1} << dim;
  }
  if (mask == 0) mask = (uint64_t{1} << d) - 1;
  return Subspace(mask);
}

std::vector<BatchPointQuery> MakeBatch(const data::Dataset& ds, size_t batch,
                                       Rng* rng,
                                       std::vector<data::PointId>* ids) {
  ids->clear();
  std::vector<BatchPointQuery> queries(batch);
  for (size_t b = 0; b < batch; ++b) {
    data::PointId id;
    do {
      id = static_cast<data::PointId>(rng->UniformInt(0, ds.size() - 1));
    } while (!ds.IsLive(id));
    ids->push_back(id);
    queries[b].point = ds.Row(id);
    queries[b].exclude = id;
  }
  return queries;
}

/// Exercises one engine: SearchBatch against per-point Search, and the OD
/// batch wrapper against per-point OutlyingDegree, bitwise.
void ExpectEngineBatchMatches(const knn::KnnEngine& engine,
                              const data::Dataset& ds, uint64_t seed) {
  Rng rng(seed);
  const int d = ds.num_dims();
  for (size_t batch : {1u, 4u, 8u, 11u}) {
    const Subspace subspace = RandomSubspace(d, &rng);
    const int k = 1 + static_cast<int>(rng.UniformInt(0, 6));
    SCOPED_TRACE("batch=" + std::to_string(batch) + " k=" + std::to_string(k) +
                 " mask=" + std::to_string(subspace.mask()));
    std::vector<data::PointId> ids;
    const std::vector<BatchPointQuery> queries =
        MakeBatch(ds, batch, &rng, &ids);

    const auto results = engine.SearchBatch(queries, subspace, k);
    ASSERT_EQ(results.size(), batch);
    const std::vector<double> ods =
        knn::OutlyingDegreeBatch(engine, queries, subspace, k);
    ASSERT_EQ(ods.size(), batch);

    for (size_t b = 0; b < batch; ++b) {
      KnnQuery query;
      query.point = queries[b].point;
      query.subspace = subspace;
      query.k = k;
      query.exclude = queries[b].exclude;
      EXPECT_EQ(results[b], engine.Search(query)) << "query " << b;
      EXPECT_EQ(ods[b], knn::OutlyingDegree(engine, query)) << "query " << b;
    }
  }
}

data::Dataset MakeData(uint64_t seed, size_t n, int d) {
  Rng rng(seed);
  data::GaussianMixtureSpec spec;
  spec.num_points = n;
  spec.num_dims = d;
  return data::GenerateGaussianMixture(spec, &rng);
}

TEST(IndexBatchTest, LinearScanBatchMatchesPerPoint) {
  data::Dataset ds = MakeData(41, 400, 7);
  for (MetricKind metric :
       {MetricKind::kL2, MetricKind::kL1, MetricKind::kLInf}) {
    knn::LinearScanKnn engine(ds, metric);
    ExpectEngineBatchMatches(engine, ds, 100 + static_cast<int>(metric));
  }
}

TEST(IndexBatchTest, XTreeBatchMatchesPerPoint) {
  data::Dataset ds = MakeData(42, 500, 6);
  auto tree = XTree::BulkLoad(ds, MetricKind::kL2, {});
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  XTreeKnn engine(*tree);
  ExpectEngineBatchMatches(engine, ds, 200);
}

TEST(IndexBatchTest, VaFileBatchMatchesPerPoint) {
  data::Dataset ds = MakeData(43, 500, 6);
  auto file = VaFile::Build(ds, MetricKind::kL2, {});
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  VaFileKnn engine(*file);
  ExpectEngineBatchMatches(engine, ds, 300);
}

TEST(IndexBatchTest, IDistanceBatchMatchesPerPoint) {
  data::Dataset ds = MakeData(44, 600, 8);
  Rng rng(44);
  auto idx = IDistance::Build(ds, MetricKind::kL2, {}, &rng);
  ASSERT_TRUE(idx.ok()) << idx.status().ToString();

  Rng qrng(45);
  for (size_t batch : {1u, 4u, 9u, 16u}) {
    const int k = 1 + static_cast<int>(qrng.UniformInt(0, 7));
    SCOPED_TRACE("batch=" + std::to_string(batch) + " k=" + std::to_string(k));
    std::vector<data::PointId> ids;
    const std::vector<BatchPointQuery> queries =
        MakeBatch(ds, batch, &qrng, &ids);
    const auto results = idx->KnnBatch(queries, k);
    ASSERT_EQ(results.size(), batch);
    for (size_t b = 0; b < batch; ++b) {
      EXPECT_EQ(results[b], idx->Knn(queries[b].point, k, ids[b]))
          << "query " << b;
    }
  }
}

// Delta rows (appended after the structures were built) and tombstones
// must flow through the batch paths exactly as through the per-point ones:
// the structures serve their sealed base, the delta is merged by scan, and
// dead rows are filtered at admission.
TEST(IndexBatchTest, BatchMatchesPerPointWithDeltaAndTombstones) {
  data::Dataset ds = MakeData(46, 400, 6);
  auto tree = XTree::BulkLoad(ds, MetricKind::kL2, {});
  ASSERT_TRUE(tree.ok());
  auto file = VaFile::Build(ds, MetricKind::kL2, {});
  ASSERT_TRUE(file.ok());
  Rng irng(46);
  auto idist = IDistance::Build(ds, MetricKind::kL2, {}, &irng);
  ASSERT_TRUE(idist.ok());

  // Mutate after build: 60 appended rows and a handful of tombstones
  // (including base and delta rows).
  Rng mrng(47);
  for (int i = 0; i < 60; ++i) {
    std::vector<double> row;
    for (int dim = 0; dim < 6; ++dim) row.push_back(mrng.Uniform());
    ds.Append(row);
  }
  const std::vector<data::PointId> dead = {5, 77, 401, 433};
  ASSERT_TRUE(ds.DeleteRows(dead).ok());

  XTreeKnn xtree_engine(*tree);
  VaFileKnn vafile_engine(*file);
  knn::LinearScanKnn linear_engine(ds, MetricKind::kL2);
  ExpectEngineBatchMatches(linear_engine, ds, 500);
  ExpectEngineBatchMatches(xtree_engine, ds, 501);
  ExpectEngineBatchMatches(vafile_engine, ds, 502);

  Rng qrng(48);
  std::vector<data::PointId> ids;
  const std::vector<BatchPointQuery> queries = MakeBatch(ds, 10, &qrng, &ids);
  const auto results = idist->KnnBatch(queries, 5);
  for (size_t b = 0; b < queries.size(); ++b) {
    EXPECT_EQ(results[b], idist->Knn(queries[b].point, 5, ids[b]))
        << "query " << b;
  }
}

}  // namespace
}  // namespace hos::index
