#include "src/index/idistance.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/knn/linear_scan.h"

namespace hos::index {
namespace {

using knn::MetricKind;

TEST(IDistanceTest, ValidatesInput) {
  data::Dataset empty(2);
  Rng rng(1);
  EXPECT_FALSE(IDistance::Build(empty, MetricKind::kL2, {}, &rng).ok());
  data::Dataset ds = data::GenerateUniform(10, 2, &rng);
  IDistanceConfig config;
  config.num_partitions = 0;
  EXPECT_FALSE(IDistance::Build(ds, MetricKind::kL2, config, &rng).ok());
}

TEST(IDistanceTest, PartitionsCappedAtDatasetSize) {
  Rng rng(2);
  data::Dataset ds = data::GenerateUniform(5, 2, &rng);
  IDistanceConfig config;
  config.num_partitions = 50;
  auto index = IDistance::Build(ds, MetricKind::kL2, config, &rng);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->partitions().size(), 5u);
  EXPECT_TRUE(index->CheckInvariants().ok());
}

struct Param {
  MetricKind metric;
  int partitions;
};

class IDistanceEquivalenceTest : public ::testing::TestWithParam<Param> {};

TEST_P(IDistanceEquivalenceTest, FullSpaceKnnMatchesLinearScan) {
  const Param param = GetParam();
  Rng rng(3);
  data::GaussianMixtureSpec spec;
  spec.num_points = 700;
  spec.num_dims = 8;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);
  IDistanceConfig config;
  config.num_partitions = param.partitions;
  auto index = IDistance::Build(ds, param.metric, config, &rng);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->CheckInvariants().ok());
  knn::LinearScanKnn oracle(ds, param.metric);

  for (int trial = 0; trial < 40; ++trial) {
    auto id = static_cast<data::PointId>(rng.UniformInt(0, ds.size() - 1));
    int k = 1 + static_cast<int>(rng.UniformInt(0, 9));
    auto got = index->Knn(ds.Row(id), k, id);

    knn::KnnQuery query;
    query.point = ds.Row(id);
    query.subspace = Subspace::Full(8);
    query.k = k;
    query.exclude = id;
    auto want = oracle.Search(query);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "trial " << trial << " i " << i;
      EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
    }
  }
}

TEST_P(IDistanceEquivalenceTest, RangeSearchMatchesLinearScan) {
  const Param param = GetParam();
  Rng rng(4);
  data::Dataset ds = data::GenerateUniform(400, 6, &rng);
  IDistanceConfig config;
  config.num_partitions = param.partitions;
  auto index = IDistance::Build(ds, param.metric, config, &rng);
  ASSERT_TRUE(index.ok());
  knn::LinearScanKnn oracle(ds, param.metric);
  const Subspace full = Subspace::Full(6);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(6);
    for (auto& v : q) v = rng.Uniform();
    double radius = rng.Uniform(0.1, 0.6);
    auto got = index->RangeSearch(q, radius);
    auto want = oracle.RangeSearch(q, full, radius);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndPartitions, IDistanceEquivalenceTest,
    ::testing::Values(Param{MetricKind::kL2, 16}, Param{MetricKind::kL2, 1},
                      Param{MetricKind::kL2, 64}, Param{MetricKind::kL1, 16},
                      Param{MetricKind::kLInf, 16}),
    [](const auto& info) {
      return std::string(knn::MetricKindToString(info.param.metric)) + "_p" +
             std::to_string(info.param.partitions);
    });

TEST(IDistanceTest, PrunesDistanceComputationsOnClusteredData) {
  Rng rng(5);
  data::GaussianMixtureSpec spec;
  spec.num_points = 5000;
  spec.num_dims = 8;
  spec.num_clusters = 8;
  spec.cluster_stddev = 0.04;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);
  auto index = IDistance::Build(ds, MetricKind::kL2, {}, &rng);
  ASSERT_TRUE(index.ok());
  auto row = ds.Row(0);
  index->Knn(row, 5, data::PointId{0});
  EXPECT_LT(index->distance_computations(), 5000u / 2);
}

TEST(IDistanceTest, KLargerThanDataset) {
  Rng rng(6);
  data::Dataset ds = data::GenerateUniform(20, 3, &rng);
  auto index = IDistance::Build(ds, MetricKind::kL2, {}, &rng);
  ASSERT_TRUE(index.ok());
  std::vector<double> q{0.5, 0.5, 0.5};
  auto result = index->Knn(q, 100);
  EXPECT_EQ(result.size(), 20u);
  // With exclusion, one fewer.
  EXPECT_EQ(index->Knn(ds.Row(3), 100, data::PointId{3}).size(), 19u);
}

}  // namespace
}  // namespace hos::index
