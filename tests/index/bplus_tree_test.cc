#include "src/index/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/common/rng.h"

namespace hos::index {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree<double, int> tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Range(0.0, 100.0).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, InsertAndRangeBasics) {
  BPlusTree<double, int> tree(4);
  tree.Insert(3.0, 30);
  tree.Insert(1.0, 10);
  tree.Insert(2.0, 20);
  EXPECT_EQ(tree.size(), 3u);
  auto all = tree.Range(0.0, 10.0);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], std::make_pair(1.0, 10));
  EXPECT_EQ(all[1], std::make_pair(2.0, 20));
  EXPECT_EQ(all[2], std::make_pair(3.0, 30));
  // Inclusive bounds.
  EXPECT_EQ(tree.Range(1.0, 2.0).size(), 2u);
  EXPECT_EQ(tree.Range(1.5, 1.9).size(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, SplitsKeepOrderSmallFanout) {
  BPlusTree<int, int> tree(4);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(i, i * 10);
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
  }
  EXPECT_GT(tree.height(), 2);
  auto all = tree.Range(0, 199);
  ASSERT_EQ(all.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(all[i].first, i);
    EXPECT_EQ(all[i].second, i * 10);
  }
}

TEST(BPlusTreeTest, ReverseAndRandomInsertionOrders) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    BPlusTree<int, int> tree(6);
    std::vector<int> keys(500);
    for (int i = 0; i < 500; ++i) keys[i] = i;
    Rng rng(seed);
    rng.Shuffle(&keys);
    for (int k : keys) tree.Insert(k, -k);
    ASSERT_TRUE(tree.CheckInvariants().ok());
    auto all = tree.Range(-1000, 1000);
    ASSERT_EQ(all.size(), 500u);
    EXPECT_TRUE(std::is_sorted(
        all.begin(), all.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; }));
  }
}

TEST(BPlusTreeTest, DuplicateKeys) {
  BPlusTree<double, int> tree(4);
  for (int i = 0; i < 50; ++i) tree.Insert(7.0, i);
  tree.Insert(6.0, -1);
  tree.Insert(8.0, -2);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  auto dup = tree.Range(7.0, 7.0);
  EXPECT_EQ(dup.size(), 50u);
  EXPECT_EQ(tree.Range(6.0, 8.0).size(), 52u);
}

TEST(BPlusTreeTest, ScanEarlyStop) {
  BPlusTree<int, int> tree;
  for (int i = 0; i < 100; ++i) tree.Insert(i, i);
  int visited = 0;
  tree.Scan(0, 99, [&](int /*k*/, int /*v*/) {
    ++visited;
    return visited < 10;
  });
  EXPECT_EQ(visited, 10);
}

TEST(BPlusTreeTest, MatchesStdMultimapOnRandomWorkload) {
  BPlusTree<double, int> tree(8);
  std::multimap<double, int> reference;
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    double key = rng.Uniform(0.0, 100.0);
    tree.Insert(key, i);
    reference.emplace(key, i);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int trial = 0; trial < 50; ++trial) {
    double a = rng.Uniform(0.0, 100.0), b = rng.Uniform(0.0, 100.0);
    double lo = std::min(a, b), hi = std::max(a, b);
    auto got = tree.Range(lo, hi);
    size_t want = std::distance(reference.lower_bound(lo),
                                reference.upper_bound(hi));
    EXPECT_EQ(got.size(), want) << "[" << lo << ", " << hi << "]";
    // Keys ascending.
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(got[i - 1].first, got[i].first);
    }
  }
}

TEST(BPlusTreeTest, LargeFanoutShallowTree) {
  BPlusTree<int, int> tree(128);
  for (int i = 0; i < 10000; ++i) tree.Insert(i, i);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_LE(tree.height(), 3);
  EXPECT_EQ(tree.size(), 10000u);
}

}  // namespace
}  // namespace hos::index
