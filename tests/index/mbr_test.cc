#include "src/index/mbr.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace hos::index {
namespace {

using knn::MetricKind;

TEST(MbrTest, EmptyUntilExpanded) {
  Mbr box(2);
  EXPECT_TRUE(box.IsEmpty());
  box.Expand(std::vector<double>{1.0, 2.0});
  EXPECT_FALSE(box.IsEmpty());
  EXPECT_DOUBLE_EQ(box.min(0), 1.0);
  EXPECT_DOUBLE_EQ(box.max(0), 1.0);
}

TEST(MbrTest, ExpandGrowsCover) {
  Mbr box(2);
  box.Expand(std::vector<double>{0.0, 0.0});
  box.Expand(std::vector<double>{2.0, -1.0});
  EXPECT_DOUBLE_EQ(box.min(1), -1.0);
  EXPECT_DOUBLE_EQ(box.max(0), 2.0);
  EXPECT_DOUBLE_EQ(box.Extent(0), 2.0);
}

TEST(MbrTest, ExpandWithMbr) {
  Mbr a = Mbr::OfPoint(std::vector<double>{0.0, 0.0});
  Mbr b = Mbr::OfPoint(std::vector<double>{1.0, 1.0});
  a.Expand(b);
  EXPECT_TRUE(a.ContainsMbr(b));
  EXPECT_DOUBLE_EQ(a.Area(), 1.0);
  // Expanding with an empty box is a no-op.
  Mbr empty(2);
  Mbr before = a;
  a.Expand(empty);
  EXPECT_DOUBLE_EQ(a.Area(), before.Area());
}

TEST(MbrTest, MarginAndArea) {
  Mbr box(2);
  box.Expand(std::vector<double>{0.0, 0.0});
  box.Expand(std::vector<double>{2.0, 3.0});
  EXPECT_DOUBLE_EQ(box.Margin(), 5.0);
  EXPECT_DOUBLE_EQ(box.Area(), 6.0);
}

TEST(MbrTest, IntersectionArea) {
  Mbr a(2), b(2);
  a.Expand(std::vector<double>{0.0, 0.0});
  a.Expand(std::vector<double>{2.0, 2.0});
  b.Expand(std::vector<double>{1.0, 1.0});
  b.Expand(std::vector<double>{3.0, 3.0});
  EXPECT_DOUBLE_EQ(a.IntersectionArea(b), 1.0);
  EXPECT_TRUE(a.Intersects(b));

  Mbr c(2);
  c.Expand(std::vector<double>{5.0, 5.0});
  EXPECT_DOUBLE_EQ(a.IntersectionArea(c), 0.0);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(MbrTest, Containment) {
  Mbr outer(1), inner(1);
  outer.Expand(std::vector<double>{0.0});
  outer.Expand(std::vector<double>{10.0});
  inner.Expand(std::vector<double>{2.0});
  inner.Expand(std::vector<double>{3.0});
  EXPECT_TRUE(outer.ContainsMbr(inner));
  EXPECT_FALSE(inner.ContainsMbr(outer));
  EXPECT_TRUE(outer.ContainsPoint(std::vector<double>{10.0}));
  EXPECT_FALSE(outer.ContainsPoint(std::vector<double>{10.5}));
}

TEST(MbrTest, MinDistanceZeroInside) {
  Mbr box(2);
  box.Expand(std::vector<double>{0.0, 0.0});
  box.Expand(std::vector<double>{1.0, 1.0});
  std::vector<double> inside{0.5, 0.5};
  EXPECT_DOUBLE_EQ(
      box.MinDistance(inside, Subspace::Full(2), MetricKind::kL2), 0.0);
}

TEST(MbrTest, MinDistanceOutside) {
  Mbr box(2);
  box.Expand(std::vector<double>{0.0, 0.0});
  box.Expand(std::vector<double>{1.0, 1.0});
  std::vector<double> q{4.0, 5.0};  // gaps 3 and 4
  EXPECT_DOUBLE_EQ(box.MinDistance(q, Subspace::Full(2), MetricKind::kL2),
                   5.0);
  EXPECT_DOUBLE_EQ(box.MinDistance(q, Subspace::Full(2), MetricKind::kL1),
                   7.0);
  EXPECT_DOUBLE_EQ(box.MinDistance(q, Subspace::Full(2), MetricKind::kLInf),
                   4.0);
}

TEST(MbrTest, MinDistanceRespectsSubspace) {
  Mbr box(2);
  box.Expand(std::vector<double>{0.0, 0.0});
  box.Expand(std::vector<double>{1.0, 1.0});
  std::vector<double> q{4.0, 5.0};
  // Only dim 1 participates: gap 3.
  EXPECT_DOUBLE_EQ(
      box.MinDistance(q, Subspace::FromDims({0}), MetricKind::kL2), 3.0);
}

// MinDistance must lower-bound, MaxDistance upper-bound, the true distance
// to any point inside the box — the correctness requirement of best-first
// kNN over every metric and subspace.
TEST(MbrTest, MinMaxDistanceBoundsRandomised) {
  Rng rng(17);
  const int d = 5;
  for (int trial = 0; trial < 200; ++trial) {
    Mbr box(d);
    std::vector<double> lo(d), hi(d);
    for (int j = 0; j < d; ++j) {
      double a = rng.Uniform(-2.0, 2.0), b = rng.Uniform(-2.0, 2.0);
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    box.Expand(lo);
    box.Expand(hi);
    // A random point inside the box.
    std::vector<double> inside(d), q(d);
    for (int j = 0; j < d; ++j) {
      inside[j] = rng.Uniform(lo[j], hi[j] + 1e-12);
      q[j] = rng.Uniform(-4.0, 4.0);
    }
    uint64_t mask = rng.UniformInt(1, (1 << d) - 1);
    Subspace s(mask);
    for (MetricKind metric :
         {MetricKind::kL1, MetricKind::kL2, MetricKind::kLInf}) {
      double dist = knn::SubspaceDistance(q, inside, s, metric);
      EXPECT_LE(box.MinDistance(q, s, metric), dist + 1e-9);
      EXPECT_GE(box.MaxDistance(q, s, metric), dist - 1e-9);
    }
  }
}

TEST(MbrTest, ToStringRenders) {
  Mbr box(1);
  box.Expand(std::vector<double>{1.0});
  box.Expand(std::vector<double>{2.0});
  EXPECT_EQ(box.ToString(), "{[1,2]}");
}

}  // namespace
}  // namespace hos::index
