#include "src/index/xtree.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/data/generator.h"
#include "src/knn/linear_scan.h"

namespace hos::index {
namespace {

using knn::KnnQuery;
using knn::MetricKind;

TEST(XTreeTest, EmptyTreeAnswersEmpty) {
  data::Dataset ds(2);
  XTree tree(ds, MetricKind::kL2);
  std::vector<double> q{0.0, 0.0};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(2);
  query.k = 3;
  EXPECT_TRUE(tree.Knn(query).empty());
  EXPECT_TRUE(tree.RangeSearch(q, Subspace::Full(2), 1.0).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(XTreeTest, InsertRejectsBadId) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{0.0, 0.0});
  XTree tree(ds, MetricKind::kL2);
  EXPECT_TRUE(tree.Insert(0).ok());
  EXPECT_TRUE(tree.Insert(1).IsOutOfRange());
}

TEST(XTreeTest, SinglePoint) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{0.5, 0.5});
  auto tree = XTree::BuildByInsertion(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  std::vector<double> q{0.0, 0.0};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(2);
  query.k = 5;
  auto result = tree->Knn(query);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id, 0u);
}

TEST(XTreeTest, InvariantsHoldThroughIncrementalInserts) {
  Rng rng(3);
  data::Dataset ds = data::GenerateUniform(800, 4, &rng);
  XTree tree(ds, MetricKind::kL2);
  for (data::PointId id = 0; id < ds.size(); ++id) {
    ASSERT_TRUE(tree.Insert(id).ok());
    if (id % 100 == 99) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << id;
    }
  }
  auto stats = tree.ComputeStats();
  EXPECT_EQ(stats.num_points, 800u);
  EXPECT_GT(stats.num_leaves, 1u);
  EXPECT_GE(stats.height, 2);
}

TEST(XTreeTest, BulkLoadInvariantsAndShape) {
  Rng rng(4);
  data::Dataset ds = data::GenerateUniform(2000, 6, &rng);
  auto tree = XTree::BulkLoad(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  auto stats = tree->ComputeStats();
  EXPECT_EQ(stats.num_points, 2000u);
  // STR packs nodes near the bulk fill factor.
  EXPECT_LE(stats.num_leaves, 2000u / 16);
}

TEST(XTreeTest, HighDimClusteredDataCreatesSupernodes) {
  // Heavily clustered high-dimensional data makes low-overlap directory
  // splits impossible — the X-tree answer is supernodes.
  Rng rng(5);
  data::GaussianMixtureSpec spec;
  spec.num_points = 4000;
  spec.num_dims = 12;
  spec.num_clusters = 3;
  spec.cluster_stddev = 0.18;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);
  XTreeConfig config;
  config.max_entries = 8;
  config.max_overlap_ratio = 0.05;
  auto tree = XTree::BuildByInsertion(ds, MetricKind::kL2, config);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  EXPECT_GT(tree->ComputeStats().num_supernodes, 0u);
}

// --- Equivalence with the linear-scan oracle, across metrics, build
// --- methods and subspaces: the core correctness property (the paper uses
// --- one full-dimensional X-tree for kNN in *every* subspace).

struct EquivalenceParam {
  MetricKind metric;
  bool bulk;
};

class XTreeEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(XTreeEquivalenceTest, MatchesLinearScanInRandomSubspaces) {
  const auto param = GetParam();
  Rng rng(11);
  const int d = 6;
  data::GaussianMixtureSpec spec;
  spec.num_points = 700;
  spec.num_dims = d;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);

  auto tree = param.bulk ? XTree::BulkLoad(ds, param.metric)
                         : XTree::BuildByInsertion(ds, param.metric);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  knn::LinearScanKnn oracle(ds, param.metric);

  for (int trial = 0; trial < 40; ++trial) {
    data::PointId id =
        static_cast<data::PointId>(rng.UniformInt(0, ds.size() - 1));
    uint64_t mask = rng.UniformInt(1, (1 << d) - 1);
    auto row = ds.Row(id);
    KnnQuery query;
    query.point = row;
    query.subspace = Subspace(mask);
    query.k = 1 + static_cast<int>(rng.UniformInt(0, 9));
    query.exclude = id;

    auto got = tree->Knn(query);
    auto want = oracle.Search(query);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "trial " << trial << " i " << i;
      EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
    }
  }
}

TEST_P(XTreeEquivalenceTest, RangeSearchMatchesLinearScan) {
  const auto param = GetParam();
  Rng rng(13);
  data::Dataset ds = data::GenerateUniform(500, 5, &rng);
  auto tree = param.bulk ? XTree::BulkLoad(ds, param.metric)
                         : XTree::BuildByInsertion(ds, param.metric);
  ASSERT_TRUE(tree.ok());
  knn::LinearScanKnn oracle(ds, param.metric);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> q(5);
    for (auto& v : q) v = rng.Uniform();
    uint64_t mask = rng.UniformInt(1, 31);
    double radius = rng.Uniform(0.05, 0.4);
    auto got = tree->RangeSearch(q, Subspace(mask), radius);
    auto want = oracle.RangeSearch(q, Subspace(mask), radius);
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id);
      EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MetricsAndBuilds, XTreeEquivalenceTest,
    ::testing::Values(EquivalenceParam{MetricKind::kL2, true},
                      EquivalenceParam{MetricKind::kL2, false},
                      EquivalenceParam{MetricKind::kL1, true},
                      EquivalenceParam{MetricKind::kL1, false},
                      EquivalenceParam{MetricKind::kLInf, true},
                      EquivalenceParam{MetricKind::kLInf, false}),
    [](const auto& info) {
      std::string name(knn::MetricKindToString(info.param.metric));
      name += info.param.bulk ? "_bulk" : "_insert";
      return name;
    });

TEST(XTreeKnnAdapterTest, ImplementsEngineInterface) {
  Rng rng(19);
  data::Dataset ds = data::GenerateUniform(200, 3, &rng);
  auto tree = XTree::BulkLoad(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  XTreeKnn engine(*tree);
  EXPECT_EQ(engine.size(), 200u);
  EXPECT_EQ(engine.metric(), MetricKind::kL2);
  std::vector<double> q{0.5, 0.5, 0.5};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(3);
  query.k = 3;
  EXPECT_EQ(engine.Search(query).size(), 3u);
  EXPECT_GT(engine.distance_computations(), 0u);
}

TEST(XTreeTest, PrunesNodesComparedToLinearScan) {
  // The index must touch fewer points than a scan on clustered data.
  Rng rng(23);
  data::GaussianMixtureSpec spec;
  spec.num_points = 5000;
  spec.num_dims = 4;
  data::Dataset ds = data::GenerateGaussianMixture(spec, &rng);
  auto tree = XTree::BulkLoad(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  std::vector<double> q{0.5, 0.5, 0.5, 0.5};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(4);
  query.k = 5;
  tree->Knn(query);
  EXPECT_LT(tree->distance_computations(), 5000u / 2);
}

TEST(XTreeRemoveTest, RemoveFromEmptyTreeIsNotFound) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{0.0, 0.0});
  XTree tree(ds, MetricKind::kL2);
  EXPECT_TRUE(tree.Remove(0).IsNotFound());
}

TEST(XTreeRemoveTest, RemoveSinglePointEmptiesTree) {
  data::Dataset ds(2);
  ds.Append(std::vector<double>{0.5, 0.5});
  auto tree = XTree::BuildByInsertion(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Remove(0).ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  std::vector<double> q{0.0, 0.0};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(2);
  query.k = 1;
  EXPECT_TRUE(tree->Knn(query).empty());
  // Double delete is NotFound.
  EXPECT_TRUE(tree->Remove(0).IsNotFound());
}

TEST(XTreeRemoveTest, RemovedPointsNeverReturnedAndInvariantsHold) {
  Rng rng(29);
  data::Dataset ds = data::GenerateUniform(600, 4, &rng);
  auto tree = XTree::BuildByInsertion(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());

  std::vector<bool> removed(ds.size(), false);
  // Remove a third of the points in random order.
  for (size_t idx : rng.SampleWithoutReplacement(ds.size(), 200)) {
    auto id = static_cast<data::PointId>(idx);
    ASSERT_TRUE(tree->Remove(id).ok()) << "id " << id;
    removed[id] = true;
  }
  EXPECT_EQ(tree->size(), 400u);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  // kNN answers match a linear scan over the surviving points.
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> q(4);
    for (auto& v : q) v = rng.Uniform();
    KnnQuery query;
    query.point = q;
    query.subspace = Subspace(rng.UniformInt(1, 15));
    query.k = 8;
    auto got = tree->Knn(query);

    // Oracle: brute force over non-removed ids.
    std::vector<knn::Neighbor> want;
    for (data::PointId id = 0; id < ds.size(); ++id) {
      if (removed[id]) continue;
      want.push_back({id, knn::SubspaceDistance(q, ds.Row(id),
                                                query.subspace,
                                                MetricKind::kL2)});
    }
    std::sort(want.begin(), want.end(),
              [](const knn::Neighbor& a, const knn::Neighbor& b) {
                if (a.distance != b.distance) return a.distance < b.distance;
                return a.id < b.id;
              });
    want.resize(8);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, want[i].id) << "trial " << trial;
      EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
    }
  }
}

TEST(XTreeRemoveTest, InterleavedInsertAndRemove) {
  Rng rng(31);
  data::Dataset ds = data::GenerateUniform(400, 3, &rng);
  XTree tree(ds, MetricKind::kL2);
  // Insert the first 300.
  for (data::PointId id = 0; id < 300; ++id) {
    ASSERT_TRUE(tree.Insert(id).ok());
  }
  // Interleave: remove one, insert one of the remaining.
  for (int i = 0; i < 100; ++i) {
    auto remove_id = static_cast<data::PointId>(i * 3);
    ASSERT_TRUE(tree.Remove(remove_id).ok());
    ASSERT_TRUE(tree.Insert(static_cast<data::PointId>(300 + i)).ok());
  }
  EXPECT_EQ(tree.size(), 300u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(XTreeRemoveTest, RemoveAllPointsOneByOne) {
  Rng rng(37);
  data::Dataset ds = data::GenerateUniform(150, 3, &rng);
  auto tree = XTree::BulkLoad(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  for (data::PointId id = 0; id < ds.size(); ++id) {
    ASSERT_TRUE(tree->Remove(id).ok()) << "id " << id;
    ASSERT_TRUE(tree->CheckInvariants().ok()) << "after removing " << id;
  }
  EXPECT_EQ(tree->size(), 0u);
}

TEST(XTreeTest, DuplicatePointsHandled) {
  data::Dataset ds(2);
  for (int i = 0; i < 100; ++i) {
    ds.Append(std::vector<double>{1.0, 1.0});
  }
  auto tree = XTree::BuildByInsertion(ds, MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  std::vector<double> q{1.0, 1.0};
  KnnQuery query;
  query.point = q;
  query.subspace = Subspace::Full(2);
  query.k = 7;
  auto result = tree->Knn(query);
  ASSERT_EQ(result.size(), 7u);
  // Ties broken by ascending id, matching the oracle.
  for (size_t i = 0; i < result.size(); ++i) {
    EXPECT_EQ(result[i].id, i);
    EXPECT_DOUBLE_EQ(result[i].distance, 0.0);
  }
}

}  // namespace
}  // namespace hos::index
