// Per-backend streaming-ingest behaviour at the engine level, for the
// backends built over subspace-capable structures (iDistance's full-space
// variant is covered by tests/integration/ingest_differential_test.cc):
//
//  * exactness past the snapshot: an engine whose dataset grew after it
//    was built answers Search/RangeSearch bit-identically to an engine
//    freshly built over the grown dataset (the satellite fix — the old
//    "scalar fallback" for grown datasets was silently wrong for the
//    index backends, which simply omitted the new rows);
//  * Rebuild() folds the delta into the structure and keeps answering
//    identically;
//  * the stale-snapshot fallback (in-place overwrite) is detected,
//    counted, and — for the scan backend, where the fallback is exact —
//    still correct.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/data/generator.h"
#include "src/index/va_file.h"
#include "src/index/xtree.h"
#include "src/knn/knn_engine.h"
#include "src/knn/linear_scan.h"

namespace hos::index {
namespace {

constexpr int kDims = 4;
constexpr size_t kBase = 90;
constexpr size_t kDelta = 30;

data::Dataset MakeDataset(size_t rows, uint64_t seed) {
  Rng rng(seed);
  return data::GenerateUniform(rows, kDims, &rng);
}

void AppendDelta(data::Dataset* dataset, uint64_t seed) {
  Rng rng(seed);
  data::Dataset extra = data::GenerateUniform(kDelta, kDims, &rng);
  for (data::PointId i = 0; i < extra.size(); ++i) {
    dataset->Append(extra.Row(i));
  }
}

void ExpectSameNeighbors(const std::vector<knn::Neighbor>& got,
                         const std::vector<knn::Neighbor>& want,
                         const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "rank " << i;
    EXPECT_EQ(got[i].distance, want[i].distance) << "rank " << i;
  }
}

/// Runs the grown-dataset equivalence protocol for one engine pair.
template <typename QueryFn, typename RangeFn>
void ExpectEquivalentOnProbes(const data::Dataset& dataset, QueryFn&& knn,
                              RangeFn&& range, const std::string& label) {
  const std::vector<data::PointId> probes = {
      0, 11, static_cast<data::PointId>(kBase - 1),
      static_cast<data::PointId>(kBase),  // first delta row
      static_cast<data::PointId>(dataset.size() - 1)};
  for (data::PointId id : probes) {
    for (int k : {1, 3, 7}) {
      knn(id, k, label + ", id " + std::to_string(id) +
                     ", k " + std::to_string(k));
    }
    range(id, 0.35, label + ", range, id " + std::to_string(id));
  }
}

TEST(DeltaRebuildTest, XTreeServesDeltaExactlyAndRebuilds) {
  data::Dataset grown = MakeDataset(kBase, 3);
  auto tree = XTree::BulkLoad(grown, knn::MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  AppendDelta(&grown, 4);

  auto fresh = XTree::BulkLoad(grown, knn::MetricKind::kL2);
  ASSERT_TRUE(fresh.ok());

  EXPECT_EQ(tree->base_rows(), kBase);
  EXPECT_EQ(fresh->base_rows(), grown.size());

  auto compare = [&](const XTree& streamed, const std::string& label) {
    ExpectEquivalentOnProbes(
        grown,
        [&](data::PointId id, int k, const std::string& trace) {
          knn::KnnQuery query;
          query.point = grown.Row(id);
          query.subspace = Subspace::FromOneBased({1, 3});
          query.k = k;
          query.exclude = id;
          ExpectSameNeighbors(streamed.Knn(query), fresh->Knn(query), trace);
          query.subspace = Subspace::Full(kDims);
          ExpectSameNeighbors(streamed.Knn(query), fresh->Knn(query),
                              trace + " (full space)");
        },
        [&](data::PointId id, double radius, const std::string& trace) {
          const Subspace s = Subspace::FromOneBased({2, 4});
          ExpectSameNeighbors(streamed.RangeSearch(grown.Row(id), s, radius),
                              fresh->RangeSearch(grown.Row(id), s, radius),
                              trace);
        },
        label);
  };

  compare(*tree, "delta scan");
  EXPECT_EQ(tree->stale_fallbacks(), 0u)
      << "append-delta serving must not be treated as a stale fallback";

  ASSERT_TRUE(tree->Rebuild().ok());
  EXPECT_EQ(tree->base_rows(), grown.size());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  compare(*tree, "after Rebuild");
}

TEST(DeltaRebuildTest, VaFileServesDeltaExactlyAndRebuilds) {
  data::Dataset grown = MakeDataset(kBase, 5);
  auto file = VaFile::Build(grown, knn::MetricKind::kL2);
  ASSERT_TRUE(file.ok());
  AppendDelta(&grown, 6);

  auto fresh = VaFile::Build(grown, knn::MetricKind::kL2);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(file->base_rows(), kBase);

  auto compare = [&](const VaFile& streamed, const std::string& label) {
    ExpectEquivalentOnProbes(
        grown,
        [&](data::PointId id, int k, const std::string& trace) {
          knn::KnnQuery query;
          query.point = grown.Row(id);
          query.subspace = Subspace::FromOneBased({1, 2, 4});
          query.k = k;
          query.exclude = id;
          ExpectSameNeighbors(streamed.Knn(query), fresh->Knn(query), trace);
        },
        [&](data::PointId id, double radius, const std::string& trace) {
          const Subspace s = Subspace::Full(kDims);
          ExpectSameNeighbors(streamed.RangeSearch(grown.Row(id), s, radius),
                              fresh->RangeSearch(grown.Row(id), s, radius),
                              trace);
        },
        label);
  };

  compare(*file, "delta scan");
  EXPECT_EQ(file->stale_fallbacks(), 0u);

  ASSERT_TRUE(file->Rebuild().ok());
  EXPECT_EQ(file->base_rows(), grown.size());
  compare(*file, "after Rebuild");
}

TEST(DeltaRebuildTest, LinearScanServesDeltaExactlyAndRebuilds) {
  data::Dataset grown = MakeDataset(kBase, 7);
  knn::LinearScanKnn engine(grown, knn::MetricKind::kL2);
  AppendDelta(&grown, 8);
  knn::LinearScanKnn fresh(grown, knn::MetricKind::kL2);

  auto compare = [&](const std::string& label) {
    ExpectEquivalentOnProbes(
        grown,
        [&](data::PointId id, int k, const std::string& trace) {
          knn::KnnQuery query;
          query.point = grown.Row(id);
          query.subspace = Subspace::FromOneBased({2, 3});
          query.k = k;
          query.exclude = id;
          ExpectSameNeighbors(engine.Search(query), fresh.Search(query),
                              trace);
        },
        [&](data::PointId id, double radius, const std::string& trace) {
          const Subspace s = Subspace::Full(kDims);
          ExpectSameNeighbors(engine.RangeSearch(grown.Row(id), s, radius),
                              fresh.RangeSearch(grown.Row(id), s, radius),
                              trace);
        },
        label);
  };

  compare("delta scan");
  EXPECT_EQ(engine.stale_fallbacks(), 0u);

  engine.Rebuild();
  compare("after Rebuild");
  EXPECT_EQ(engine.stale_fallbacks(), 0u);
}

// Hand-driven Insert interacts with the delta boundary: contiguous
// insertion of appended rows moves them from delta-scan to tree coverage;
// skipping ahead would leave rows covered by neither, so it is rejected.
TEST(DeltaRebuildTest, XTreeInsertRespectsTheDeltaBoundary) {
  data::Dataset grown = MakeDataset(kBase, 11);
  auto tree = XTree::BulkLoad(grown, knn::MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  AppendDelta(&grown, 12);

  // Skipping over appended rows would orphan [kBase, kBase + 1).
  auto skipped =
      tree->Insert(static_cast<data::PointId>(kBase + 1));
  EXPECT_FALSE(skipped.ok());
  EXPECT_TRUE(skipped.IsFailedPrecondition()) << skipped.ToString();
  EXPECT_EQ(tree->base_rows(), kBase);

  // Contiguous insertion is fine and advances the boundary, and the row
  // appears exactly once in query results.
  ASSERT_TRUE(tree->Insert(static_cast<data::PointId>(kBase)).ok());
  EXPECT_EQ(tree->base_rows(), kBase + 1);
  auto fresh = XTree::BulkLoad(grown, knn::MetricKind::kL2);
  ASSERT_TRUE(fresh.ok());
  knn::KnnQuery query;
  query.point = grown.Row(static_cast<data::PointId>(kBase));
  query.subspace = Subspace::Full(kDims);
  query.k = 4;
  ExpectSameNeighbors(tree->Knn(query), fresh->Knn(query),
                      "contiguous insert at the delta boundary");
}

// The stale-snapshot fallback proper: an in-place overwrite after the
// snapshot. For the linear scan the scalar fallback is still exact, so
// results must match a fresh engine over the mutated data — and the
// fallback must be visible in the counter (the satellite's assert/log).
TEST(DeltaRebuildTest, OverwriteTriggersCountedFallback) {
  data::Dataset mutated = MakeDataset(kBase, 9);
  knn::LinearScanKnn engine(mutated, knn::MetricKind::kL2);
  auto tree = XTree::BulkLoad(mutated, knn::MetricKind::kL2);
  ASSERT_TRUE(tree.ok());
  auto file = VaFile::Build(mutated, knn::MetricKind::kL2);
  ASSERT_TRUE(file.ok());

  const uint64_t version_before = mutated.version();
  mutated.Set(10, 2, 0.123456);
  EXPECT_EQ(mutated.version(), version_before + 1);
  EXPECT_EQ(mutated.last_overwrite_version(), mutated.version());

  knn::KnnQuery query;
  query.point = mutated.Row(0);
  query.subspace = Subspace::Full(kDims);
  query.k = 5;
  query.exclude = data::PointId{0};

  // Linear scan: fallback is exact — matches a fresh engine.
  knn::LinearScanKnn fresh(mutated, knn::MetricKind::kL2);
  ExpectSameNeighbors(engine.Search(query), fresh.Search(query),
                      "overwrite fallback, linear scan");
  EXPECT_GE(engine.stale_fallbacks(), 1u);

  // Index backends: the unusable snapshot is detected and counted (their
  // geometry is stale under overwrite, so only the counter is asserted).
  (void)tree->Knn(query);
  EXPECT_GE(tree->stale_fallbacks(), 1u);
  (void)file->Knn(query);
  EXPECT_GE(file->stale_fallbacks(), 1u);

  // Rebuilding clears the staleness: the snapshot matches again and the
  // kernel path returns without further fallbacks.
  const uint64_t fallbacks_after_probe = engine.stale_fallbacks();
  engine.Rebuild();
  ExpectSameNeighbors(engine.Search(query), fresh.Search(query),
                      "post-rebuild, linear scan");
  EXPECT_EQ(engine.stale_fallbacks(), fallbacks_after_probe);
}

}  // namespace
}  // namespace hos::index
