#include "src/learning/learner.h"

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/knn/linear_scan.h"

namespace hos::learning {
namespace {

data::Dataset MakeUniform(uint64_t seed, size_t n, int d) {
  Rng rng(seed);
  return data::GenerateUniform(n, d, &rng);
}

TEST(LearnerTest, ZeroSamplesYieldsFlatPriors) {
  data::Dataset ds = MakeUniform(1, 100, 4);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LearnerOptions options;
  options.sample_size = 0;
  Rng rng(1);
  auto report = LearnPruningPriors(ds, engine, options, &rng);
  auto flat = lattice::PruningPriors::Flat(4);
  EXPECT_EQ(report.priors.up, flat.up);
  EXPECT_EQ(report.priors.down, flat.down);
  EXPECT_TRUE(report.sample_ids.empty());
}

TEST(LearnerTest, SamplesRequestedCount) {
  data::Dataset ds = MakeUniform(2, 100, 4);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LearnerOptions options;
  options.sample_size = 7;
  options.threshold = 0.5;
  Rng rng(2);
  auto report = LearnPruningPriors(ds, engine, options, &rng);
  EXPECT_EQ(report.sample_ids.size(), 7u);
  EXPECT_GT(report.total_counters.od_evaluations, 0u);
}

TEST(LearnerTest, SampleSizeCappedAtDatasetSize) {
  data::Dataset ds = MakeUniform(3, 10, 3);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LearnerOptions options;
  options.sample_size = 50;
  options.k = 3;
  options.threshold = 0.5;
  Rng rng(3);
  auto report = LearnPruningPriors(ds, engine, options, &rng);
  EXPECT_EQ(report.sample_ids.size(), 10u);
}

TEST(LearnerTest, BoundaryOverridesApplied) {
  data::Dataset ds = MakeUniform(4, 120, 5);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LearnerOptions options;
  options.sample_size = 10;
  options.threshold = 0.8;
  Rng rng(4);
  auto report = LearnPruningPriors(ds, engine, options, &rng);
  // Paper §3.2: p_down(1) = p_up(d) = 0 in the averaged priors.
  EXPECT_DOUBLE_EQ(report.priors.down[1], 0.0);
  EXPECT_DOUBLE_EQ(report.priors.up[5], 0.0);
}

TEST(LearnerTest, PriorsAreComplementary) {
  data::Dataset ds = MakeUniform(5, 150, 5);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LearnerOptions options;
  options.sample_size = 8;
  options.threshold = 1.0;
  Rng rng(5);
  auto report = LearnPruningPriors(ds, engine, options, &rng);
  for (int m = 2; m <= 4; ++m) {  // interior levels
    EXPECT_NEAR(report.priors.up[m] + report.priors.down[m], 1.0, 1e-12);
    EXPECT_GE(report.priors.up[m], 0.0);
    EXPECT_LE(report.priors.up[m], 1.0);
  }
}

TEST(LearnerTest, MonotonicityShowsInFractions) {
  // By OD monotonicity the per-level outlying fraction is non-decreasing
  // in m for any single point, hence also after averaging.
  data::Dataset ds = MakeUniform(6, 200, 6);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LearnerOptions options;
  options.sample_size = 12;
  options.threshold = 0.9;
  Rng rng(6);
  auto report = LearnPruningPriors(ds, engine, options, &rng);
  for (int m = 2; m <= 6; ++m) {
    EXPECT_GE(report.mean_outlier_fraction[m] + 1e-12,
              report.mean_outlier_fraction[m - 1])
        << "m=" << m;
  }
}

TEST(LearnerTest, DeterministicGivenSeed) {
  data::Dataset ds = MakeUniform(7, 100, 4);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  LearnerOptions options;
  options.sample_size = 5;
  options.threshold = 0.7;
  Rng rng_a(7), rng_b(7);
  auto a = LearnPruningPriors(ds, engine, options, &rng_a);
  auto b = LearnPruningPriors(ds, engine, options, &rng_b);
  EXPECT_EQ(a.sample_ids, b.sample_ids);
  EXPECT_EQ(a.priors.up, b.priors.up);
  EXPECT_EQ(a.priors.down, b.priors.down);
}

TEST(LearnerTest, ExtremeThresholds) {
  data::Dataset ds = MakeUniform(8, 80, 4);
  knn::LinearScanKnn engine(ds, knn::MetricKind::kL2);
  Rng rng(8);
  LearnerOptions options;
  options.sample_size = 5;

  options.threshold = 0.0;  // everything outlying
  auto low = LearnPruningPriors(ds, engine, options, &rng);
  for (int m = 1; m <= 4; ++m) {
    EXPECT_DOUBLE_EQ(low.mean_outlier_fraction[m], 1.0);
  }

  options.threshold = 1e18;  // nothing outlying
  auto high = LearnPruningPriors(ds, engine, options, &rng);
  for (int m = 1; m <= 4; ++m) {
    EXPECT_DOUBLE_EQ(high.mean_outlier_fraction[m], 0.0);
  }
}

}  // namespace
}  // namespace hos::learning
