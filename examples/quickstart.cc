// Quickstart: the smallest end-to-end use of the HOS-Miner public API.
//
//   1. Build a dataset (here: synthetic with one planted subspace outlier).
//   2. Build the system (index + threshold + learning) with HosMiner::Build.
//   3. Query a point and read its minimal outlying subspaces.
//
// Run: ./build/examples/quickstart

#include <cstdio>

#include "src/core/hos_miner.h"
#include "src/data/generator.h"

int main() {
  using namespace hos;  // NOLINT

  // 1. A 6-dimensional dataset of 500 points. Background points follow a
  //    correlation structure in dimensions [1,2]; one planted point obeys
  //    every single dimension's distribution but violates the joint
  //    structure — an outlier visible only in subspace [1,2].
  Rng rng(2026);
  data::SubspaceOutlierSpec spec;
  spec.num_points = 500;
  spec.num_dims = 6;
  spec.planted_subspaces = {Subspace::FromOneBased({1, 2})};
  spec.displacement = 0.5;
  auto generated = data::GenerateSubspaceOutliers(spec, &rng);
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  const data::PointId suspect = generated->outliers[0].id;

  // 2. Build the system. Defaults: L2 metric, min-max normalisation,
  //    X-tree index, auto threshold (95th percentile of full-space OD),
  //    sampling-based learning with S = 20.
  core::HosMinerConfig config;
  config.k = 5;
  auto miner = core::HosMiner::Build(std::move(generated->dataset), config);
  if (!miner.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 miner.status().ToString().c_str());
    return 1;
  }
  std::printf("Built HOS-Miner over %zu points, %d dims; threshold T = %.3f\n",
              miner->dataset().size(), miner->num_dims(),
              miner->threshold());

  // 3. Query the suspect point.
  auto result = miner->Query(suspect);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (!result->is_outlier_anywhere()) {
    std::printf("Point %u is not an outlier in any subspace.\n", suspect);
    return 0;
  }
  std::printf("Point %u is an outlier in %llu subspaces; minimal ones:\n",
              suspect,
              static_cast<unsigned long long>(
                  result->outcome.TotalOutlyingCount()));
  for (const Subspace& s : result->outlying_subspaces()) {
    std::printf("  %s\n", s.ToString().c_str());
  }
  std::printf(
      "(planted truth: [1,2]; search evaluated %llu of %d subspaces)\n",
      static_cast<unsigned long long>(
          result->outcome.counters.od_evaluations),
      (1 << 6) - 1);
  return 0;
}
