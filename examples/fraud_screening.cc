// Fraud screening: the paper's credit-card-fraud motivation, run as a
// whole-dataset pipeline. Instead of querying one suspicious transaction,
// the system screens every transaction by full-space OD (by OD
// monotonicity, a point has an outlying subspace iff its full-space OD
// clears T) and then details the *subspaces* of each flagged transaction —
// which is what an analyst acts on ("unusual amount for this hour" vs
// "unusual distance for this merchant").
//
// Run: ./build/examples/fraud_screening

#include <cstdio>

#include "src/core/hos_miner.h"
#include "src/core/result_json.h"
#include "src/data/dataset.h"

int main() {
  using namespace hos;  // NOLINT

  const std::vector<std::string> features = {
      "amount_usd",       // coupled with merchant tier
      "merchant_tier",    // 0..1 scale: groceries .. luxury
      "hour_of_day",      // coupled with amount: big buys happen in daytime
      "dist_from_home_km",
      "days_since_last_txn",
  };
  data::Dataset txns(static_cast<int>(features.size()));
  if (auto s = txns.SetColumnNames(features); !s.ok()) return 1;

  Rng rng(23);
  for (int i = 0; i < 800; ++i) {
    double tier = rng.Uniform();
    // Spending scales with merchant tier (20..520 USD) plus noise.
    double amount = 20.0 + tier * 400.0 + rng.Gaussian(0, 25.0);
    // Purchases cluster in waking hours, larger ones earlier.
    double hour = std::clamp(13.0 + (0.5 - tier) * 6.0 + rng.Gaussian(0, 3.0),
                             0.0, 24.0);
    double dist = rng.Uniform(0.0, 30.0);
    double gap_days = rng.Uniform(0.0, 14.0);
    txns.Append(std::vector<double>{std::max(amount, 1.0), tier, hour, dist,
                                    gap_days});
  }
  // Fraud 1: a luxury-tier merchant charging a trivial amount (card-testing
  // pattern) — amount and tier each in range, the pair is not.
  data::PointId fraud_card_test = txns.Append(
      std::vector<double>{25.0, 0.95, 14.0, 12.0, 3.0});
  // Fraud 2: a large grocery-tier charge at 3am far from home.
  data::PointId fraud_night = txns.Append(
      std::vector<double>{410.0, 0.08, 3.0, 26.0, 1.0});

  core::HosMinerConfig config;
  config.k = 6;
  config.threshold_percentile = 0.985;
  config.seed = 23;
  auto miner = core::HosMiner::Build(std::move(txns), config);
  if (!miner.ok()) {
    std::fprintf(stderr, "%s\n", miner.status().ToString().c_str());
    return 1;
  }
  std::printf("Screened %zu transactions (T = %.3f, 98.5th pct)\n",
              miner->dataset().size(), miner->threshold());

  // Stage 1: one kNN query per transaction decides who has ANY outlying
  // subspace at all.
  auto flagged = miner->ScreenOutliers();
  std::printf("Stage 1: %zu transactions flagged for review\n",
              flagged.size());

  // Stage 2: lattice search only for the flagged ones.
  const auto& names = miner->dataset().column_names();
  int shown = 0;
  for (const auto& hit : flagged) {
    auto result = miner->Query(hit.id);
    if (!result.ok()) continue;
    std::printf("  txn #%u (full-space OD %.2f)%s:\n", hit.id,
                hit.full_space_od,
                hit.id == fraud_card_test   ? "  <-- planted card-testing"
                : hit.id == fraud_night     ? "  <-- planted night spend"
                                            : "");
    for (const Subspace& s : result->outlying_subspaces()) {
      std::printf("      anomalous combination {");
      bool first = true;
      for (int dim : s.Dims()) {
        std::printf("%s%s", first ? "" : ", ", names[dim].c_str());
        first = false;
      }
      std::printf("}\n");
    }
    if (++shown == 6) {
      std::printf("  ... (%zu more)\n", flagged.size() - shown);
      break;
    }
  }

  // The JSON the demo UI would consume for the top hit.
  if (!flagged.empty()) {
    auto result = miner->Query(flagged.front().id);
    if (result.ok()) {
      std::printf("\nJSON export of the top hit:\n%s\n",
                  core::QueryResultToJson(*result).c_str());
    }
  }
  return 0;
}
