// Medical scenario from the paper's introduction: "it is useful for the
// Doctors to identify from voluminous medical data the subspaces in which a
// particular patient is found abnormal and therefore a corresponding
// medical treatment can be provided in a timely manner."
//
// We simulate 600 routine check-ups with seven vitals. Healthy physiology
// couples several of them (systolic vs diastolic blood pressure; BMI vs
// resting glucose). A patient can be "in range" on every single vital yet
// clinically abnormal in a *combination* — exactly what subspace outlier
// detection surfaces and full-space detectors blur.
//
// The threshold T is the paper's user parameter; here it plays the role of
// the clinician's sensitivity dial and is set explicitly.
//
// Run: ./build/examples/medical_diagnosis

#include <cstdio>

#include "src/baseline/lof.h"
#include "src/core/hos_miner.h"
#include "src/data/dataset.h"
#include "src/knn/linear_scan.h"

int main() {
  using namespace hos;  // NOLINT

  const std::vector<std::string> vitals = {
      "systolic_mmHg", "diastolic_mmHg", "heart_rate_bpm", "temp_c",
      "glucose_mgdl",  "bmi",            "spo2_pct",
  };
  data::Dataset patients(static_cast<int>(vitals.size()));
  if (auto s = patients.SetColumnNames(vitals); !s.ok()) return 1;

  Rng rng(11);
  for (int i = 0; i < 600; ++i) {
    double diastolic = rng.Uniform(65.0, 90.0);
    // Healthy coupling: systolic ~ diastolic + 40 ± 6.
    double systolic = diastolic + 40.0 + rng.Gaussian(0, 6.0);
    double heart_rate = rng.Uniform(55.0, 95.0);
    double temp = rng.Gaussian(36.8, 0.3);
    double bmi = rng.Uniform(19.0, 32.0);
    // Healthy coupling: glucose ~ 60 + 1.5*bmi ± 7.
    double glucose = 60.0 + 1.5 * bmi + rng.Gaussian(0, 7.0);
    double spo2 = rng.Uniform(95.0, 100.0);
    patients.Append(std::vector<double>{systolic, diastolic, heart_rate,
                                        temp, glucose, bmi, spo2});
  }

  // Patient X: wide pulse pressure. Systolic 152 and diastolic 67 are each
  // inside their healthy ranges, but 67 predicts systolic ~ 107 — the pair
  // is the anomaly.
  data::PointId patient_x = patients.Append(std::vector<double>{
      152.0, 67.0, 72.0, 36.7, 95.0, 23.0, 98.0});
  // Patient Y: glucose 135 with BMI 19.5 (predicted ~ 89). Both values are
  // individually unremarkable; the combination suggests insulin resistance.
  data::PointId patient_y = patients.Append(std::vector<double>{
      118.0, 78.0, 64.0, 36.9, 135.0, 19.5, 97.0});

  data::Dataset copy = patients;  // for the LOF comparison below

  core::HosMinerConfig config;
  config.k = 6;
  config.threshold = 2.6;  // clinician-tuned sensitivity (paper's T)
  auto miner = core::HosMiner::Build(std::move(patients), config);
  if (!miner.ok()) {
    std::fprintf(stderr, "%s\n", miner.status().ToString().c_str());
    return 1;
  }
  std::printf("Clinic dataset: %zu check-ups, %d vitals, T = %.3f\n",
              miner->dataset().size(), miner->num_dims(), miner->threshold());

  auto report = [&](const char* label, data::PointId id) {
    auto result = miner->Query(id);
    if (!result.ok()) return;
    std::printf("\n%s (record #%u): ", label, id);
    if (!result->is_outlier_anywhere()) {
      std::printf("no abnormal vital combination.\n");
      return;
    }
    std::printf("abnormal in:\n");
    for (const Subspace& s : result->outlying_subspaces()) {
      std::printf("   {");
      bool first = true;
      for (int dim : s.Dims()) {
        std::printf("%s%s", first ? "" : ", ",
                    miner->dataset().column_names()[dim].c_str());
        first = false;
      }
      std::printf("}\n");
    }
  };

  report("Patient X (wide pulse pressure planted)", patient_x);
  report("Patient Y (glucose/BMI mismatch planted)", patient_y);
  report("Control (healthy record)", 3);

  // Contrast with a full-space detector (the paper's motivation): LOF over
  // all seven vitals.
  knn::LinearScanKnn engine(copy, knn::MetricKind::kL2);
  baseline::LofOptions lof_options;
  lof_options.min_pts = 10;
  auto scores = baseline::ComputeLofScores(copy, engine, lof_options);
  if (scores.ok()) {
    auto top = baseline::TopLofOutliers(*scores, 10);
    bool x_found = false, y_found = false;
    for (data::PointId id : top) {
      x_found |= (id == patient_x);
      y_found |= (id == patient_y);
    }
    std::printf(
        "\nFull-space LOF top-10 contains patient X: %s, patient Y: %s —\n"
        "and even when a full-space method does flag a patient, it cannot\n"
        "say WHICH vitals are abnormal. HOS-Miner's answer is the subspace\n"
        "itself (\"outlier -> spaces\", paper §1).\n",
        x_found ? "yes" : "no", y_found ? "yes" : "no");
  }
  return 0;
}
