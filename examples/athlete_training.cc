// Athlete-training scenario from the paper's introduction: "it is critical
// to identify the specific subspace(s) in which an athlete deviates from
// his or her teammates in the daily training performances. Knowing the
// specific weakness (subspace) allows a more targeted training program."
//
// We simulate a squad of 400 athletes with six daily-training metrics.
// Physiology couples some metrics (sprint speed ~ jump power; endurance ~
// recovery rate), so the interesting outliers are *combination* outliers:
// every single number looks fine, but a pair is inconsistent.
//
// Run: ./build/examples/athlete_training

#include <cstdio>

#include "src/core/hos_miner.h"
#include "src/data/dataset.h"

int main() {
  using namespace hos;  // NOLINT

  const std::vector<std::string> metrics = {
      "sprint_100m_s",    // 100 m sprint time, seconds (lower = better)
      "vertical_jump_cm",  // coupled with sprint: fast sprinters jump high
      "run_5k_min",        // 5 km run time, minutes
      "recovery_hr_bpm",   // heart-rate 1 min after effort; coupled with 5k
      "bench_press_kg",
      "flexibility_cm",
  };

  data::Dataset squad(static_cast<int>(metrics.size()));
  if (auto s = squad.SetColumnNames(metrics); !s.ok()) return 1;

  Rng rng(7);
  auto add_athlete = [&](double sprint_noise, double recovery_noise) {
    double sprint = rng.Uniform(10.8, 13.2);
    // Coupling 1: jump ~ 190 - 10*(sprint - 11) + noise.
    double jump = 190.0 - 10.0 * (sprint - 11.0) + rng.Gaussian(0, 3.0) +
                  sprint_noise;
    double run5k = rng.Uniform(17.0, 24.0);
    // Coupling 2: recovery ~ 90 + 3*(run5k - 17) + noise.
    double recovery = 90.0 + 3.0 * (run5k - 17.0) + rng.Gaussian(0, 2.0) +
                      recovery_noise;
    double bench = rng.Uniform(60.0, 140.0);
    double flexibility = rng.Uniform(-5.0, 25.0);
    return squad.Append(
        std::vector<double>{sprint, jump, run5k, recovery, bench,
                            flexibility});
  };

  for (int i = 0; i < 400; ++i) add_athlete(0.0, 0.0);
  // Athlete A: sprints fast but jumps like a slow athlete — a deviation
  // visible only in the (sprint, jump) subspace.
  data::PointId athlete_a = add_athlete(-35.0, 0.0);
  // Athlete B: ordinary everywhere except an abnormal endurance/recovery
  // combination.
  data::PointId athlete_b = add_athlete(0.0, +28.0);

  core::HosMinerConfig config;
  config.k = 5;
  config.threshold_percentile = 0.97;
  auto miner = core::HosMiner::Build(std::move(squad), config);
  if (!miner.ok()) {
    std::fprintf(stderr, "%s\n", miner.status().ToString().c_str());
    return 1;
  }

  auto report = [&](const char* name, data::PointId id) {
    auto result = miner->Query(id);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("\n%s (athlete #%u):\n", name, id);
    if (!result->is_outlier_anywhere()) {
      std::printf("  no deviating training subspace — train as planned.\n");
      return;
    }
    for (const Subspace& s : result->outlying_subspaces()) {
      std::printf("  deviates in {");
      bool first = true;
      for (int dim : s.Dims()) {
        std::printf("%s%s", first ? "" : ", ",
                    miner->dataset().column_names()[dim].c_str());
        first = false;
      }
      std::printf("} -> targeted drill for this combination\n");
    }
  };

  std::printf("Training-squad analysis (%zu athletes, %d metrics, T=%.3f)\n",
              miner->dataset().size(), miner->num_dims(), miner->threshold());
  report("Athlete A (sprint/jump mismatch planted)", athlete_a);
  report("Athlete B (endurance/recovery mismatch planted)", athlete_b);
  report("Control (regular teammate)", 0);
  return 0;
}
