// hos_cli: the interactive face of the demo system — load any numeric CSV,
// pick a row (or pass an explicit point), get its outlying subspaces.
//
// Usage:
//   hos_cli <data.csv> --query <row-id> [options]
//   hos_cli <data.csv> --point v1,v2,...,vd [options]
//
// Options:
//   --k <int>            neighbours of the OD measure        (default 5)
//   --threshold <float>  outlier threshold T                 (default auto)
//   --percentile <float> percentile for auto T               (default 0.95)
//   --metric <L1|L2|LInf>                                    (default L2)
//   --samples <int>      learning sample size S              (default 20)
//   --no-header          CSV has no header row
//   --linear-scan        use brute-force kNN instead of the X-tree

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "src/core/hos_miner.h"
#include "src/data/csv.h"

namespace {

using namespace hos;  // NOLINT

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <data.csv> (--query <row-id> | --point v1,...,vd)\n"
               "  [--k N] [--threshold T] [--percentile P]\n"
               "  [--metric L1|L2|LInf] [--samples S] [--no-header]\n"
               "  [--linear-scan]\n",
               argv0);
  return 2;
}

std::vector<double> ParsePoint(const std::string& text) {
  std::vector<double> out;
  std::stringstream stream(text);
  std::string field;
  while (std::getline(stream, field, ',')) {
    out.push_back(std::atof(field.c_str()));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string csv_path = argv[1];

  core::HosMinerConfig config;
  data::CsvOptions csv_options;
  long query_id = -1;
  std::vector<double> query_point;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--query") {
      query_id = std::atol(next());
    } else if (arg == "--point") {
      query_point = ParsePoint(next());
    } else if (arg == "--k") {
      config.k = std::atoi(next());
    } else if (arg == "--threshold") {
      config.threshold = std::atof(next());
    } else if (arg == "--percentile") {
      config.threshold_percentile = std::atof(next());
    } else if (arg == "--samples") {
      config.sample_size = std::atoi(next());
    } else if (arg == "--metric") {
      const std::string metric = next();
      if (metric == "L1") {
        config.metric = knn::MetricKind::kL1;
      } else if (metric == "L2") {
        config.metric = knn::MetricKind::kL2;
      } else if (metric == "LInf") {
        config.metric = knn::MetricKind::kLInf;
      } else {
        std::fprintf(stderr, "unknown metric '%s'\n", metric.c_str());
        return 2;
      }
    } else if (arg == "--no-header") {
      csv_options.has_header = false;
    } else if (arg == "--linear-scan") {
      config.index = core::IndexKind::kLinearScan;
    } else {
      return Usage(argv[0]);
    }
  }
  if (query_id < 0 && query_point.empty()) return Usage(argv[0]);

  auto dataset = data::ReadCsvFile(csv_path, csv_options);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", csv_path.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %zu rows x %d columns from %s\n", dataset->size(),
              dataset->num_dims(), csv_path.c_str());

  auto miner = core::HosMiner::Build(std::move(dataset).value(), config);
  if (!miner.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 miner.status().ToString().c_str());
    return 1;
  }
  std::printf("k = %d, metric = %s, T = %.4f, learned from S = %zu samples\n",
              miner->config().k,
              std::string(knn::MetricKindToString(miner->config().metric))
                  .c_str(),
              miner->threshold(),
              miner->learning_report().sample_ids.size());

  auto result = query_id >= 0
                    ? miner->Query(static_cast<data::PointId>(query_id))
                    : miner->QueryPoint(query_point);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (!result->is_outlier_anywhere()) {
    std::printf("-> not an outlier in any subspace.\n");
    return 0;
  }
  std::printf("-> outlier in %llu subspaces; minimal outlying subspaces:\n",
              static_cast<unsigned long long>(
                  result->outcome.TotalOutlyingCount()));
  const auto& names = miner->dataset().column_names();
  for (const Subspace& s : result->outlying_subspaces()) {
    std::printf("   %s  {", s.ToString().c_str());
    bool first = true;
    for (int dim : s.Dims()) {
      std::printf("%s%s", first ? "" : ", ", names[dim].c_str());
      first = false;
    }
    std::printf("}\n");
  }
  std::printf("(evaluated %llu subspaces, pruned %llu up / %llu down)\n",
              static_cast<unsigned long long>(
                  result->outcome.counters.od_evaluations),
              static_cast<unsigned long long>(
                  result->outcome.counters.pruned_upward),
              static_cast<unsigned long long>(
                  result->outcome.counters.pruned_downward));
  return 0;
}
